#pragma once

#include "src/core/ast.h"
#include "src/util/result.h"

/// \file acyclic.h
/// The acyclicity chases of Lemmas 5.4 (ranked) and 5.5/5.6 (unranked).
///
/// Both lemmas rewrite each rule of a monadic datalog program into an
/// equivalent *acyclic* rule (or detect it unsatisfiable) by exploiting the
/// bidirectional functional dependencies of the tree relations
/// (Proposition 4.1): variables that must denote the same node are merged
/// (the classical Chase), impossible constraint sets are dropped, and — in
/// the unranked case — child atoms are replaced by a firstchild anchor plus
/// nextsibling* links (the predicate nextsibling_tc), following the five-step
/// procedure in the proof of Lemma 5.5 and illustrated by Figure 3.
///
/// A rule is acyclic iff its query *multigraph* (one edge per binary body
/// atom) is a forest — two parallel atoms between the same variables count as
/// a cycle (Section 5).

namespace mdatalog::tmnf {

struct ChaseResult {
  /// False: the rule can never fire on any tree and must be dropped.
  bool satisfiable = true;
  /// The rewritten acyclic rule (valid only if satisfiable).
  core::Rule rule;
  /// Number of variable-merge steps performed (diagnostics; Figure 3 shows
  /// the merges as variable sets).
  int32_t merged_vars = 0;
};

/// Lemma 5.5/5.6 for one rule over τ_ur ∪ {child} (lastchild must have been
/// expanded to child + lastsibling by the caller, per Lemma 5.6). The output
/// rule is over τ_ur ∪ {nextsibling_tc}. `program` is mutated only to intern
/// the nextsibling_tc predicate.
util::Result<ChaseResult> MakeRuleAcyclicUnranked(core::Program* program,
                                                  const core::Rule& rule);

/// Lemma 5.4 for one rule over τ_rk (child1..childK).
util::Result<ChaseResult> MakeRuleAcyclicRanked(core::Program* program,
                                                const core::Rule& rule);

/// Forest check on the query multigraph (self-loops and parallel edges are
/// cycles).
bool IsAcyclicRule(const core::Rule& rule);

}  // namespace mdatalog::tmnf
