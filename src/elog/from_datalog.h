#pragma once

#include "src/core/ast.h"
#include "src/elog/ast.h"
#include "src/util/result.h"

/// \file from_datalog.h
/// The interesting direction of Theorem 6.5: every monadic datalog program
/// over τ_ur translates to an equivalent Elog⁻ program. Following the proof,
/// the input is first brought into TMNF (Theorem 5.2) — TMNF rules map to
/// Elog⁻ almost one-for-one:
///
///   p(x) ← p0(x).                for τ_ur-unary p0 ∈ {root,leaf,lastsibling}
///                                → specialization rule (root: parent
///                                  pattern; others: dom + condition);
///   p(x) ← label_a(x).           → p(x) ← dom(x0), subelem_a(x0, x)
///                                  (label tests become subelem paths);
///   p(x) ← p0(x), p1(x).         → specialization with a pattern reference;
///   p(x) ← p0(x0), nextsibling…  → dom parent + nextsibling condition +
///                                  pattern reference;
///   p(x) ← p0(x0), firstchild(x0, x)
///                                → p(x) ← p0(x0), subelem__(x0, x),
///                                  firstsibling(x);
///   p(x) ← p0(y), firstchild(x, y)
///                                → p(x) ← dom(x), contains__(x, y),
///                                  firstsibling(y), p0(y).
///
/// where "dom" is the match-anything pattern (two Elog⁻ rules, see the proof
/// of Theorem 6.5).
///
/// Known corner (inherited from the paper's construction): a label test on
/// the *root* node is not expressible — subelem descends from a parent, and
/// the root is nobody's child. Real documents have a fixed root element
/// (html / #document), so the restriction is vacuous there; the tests pin
/// this caveat down explicitly.

namespace mdatalog::elog {

/// Translates `program` (monadic datalog over τ_ur ∪ {child, lastchild};
/// run through ToTmnf internally). Pattern names are the original predicate
/// names; generated TMNF helper predicates keep their "__" names.
util::Result<ElogProgram> DatalogToElog(const core::Program& program);

}  // namespace mdatalog::elog
