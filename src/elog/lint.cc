#include "src/elog/lint.h"

#include <algorithm>
#include <unordered_set>

#include "src/elog/to_datalog.h"
#include "src/util/check.h"

namespace mdatalog::elog {

namespace {

using analysis::RuleFate;

LintFinding::Kind FateKind(RuleFate fate) {
  switch (fate) {
    case RuleFate::kUnsatBody:
      return LintFinding::Kind::kUnsatBody;
    case RuleFate::kUnderivableBody:
      return LintFinding::Kind::kUnderivableBody;
    case RuleFate::kUnreachable:
      return LintFinding::Kind::kDeadRule;
    case RuleFate::kDuplicate:
      return LintFinding::Kind::kDuplicateRule;
    case RuleFate::kSubsumed:
      return LintFinding::Kind::kSubsumedRule;
    case RuleFate::kKept:
      break;
  }
  MD_CHECK(false);
  return LintFinding::Kind::kUnsatBody;
}

const char* FateMessage(RuleFate fate) {
  switch (fate) {
    case RuleFate::kUnsatBody:
      return "body is unsatisfiable on any tree";
    case RuleFate::kUnderivableBody:
      return "body references a pattern no rule can derive";
    case RuleFate::kUnreachable:
      return "no extraction pattern depends on this rule";
    case RuleFate::kDuplicate:
      return "identical to an earlier rule";
    case RuleFate::kSubsumed:
      return "an earlier rule already covers every match of this one";
    case RuleFate::kKept:
      break;
  }
  return "";
}

}  // namespace

const char* LintFindingKindName(LintFinding::Kind kind) {
  switch (kind) {
    case LintFinding::Kind::kUnsatBody:
      return "unsat-body";
    case LintFinding::Kind::kUnderivableBody:
      return "underivable-body";
    case LintFinding::Kind::kDeadRule:
      return "dead-rule";
    case LintFinding::Kind::kDuplicateRule:
      return "duplicate-rule";
    case LintFinding::Kind::kSubsumedRule:
      return "subsumed-rule";
    case LintFinding::Kind::kRedundantLiterals:
      return "redundant-literals";
    case LintFinding::Kind::kUnusedPattern:
      return "unused-pattern";
    case LintFinding::Kind::kUndefinedPattern:
      return "undefined-pattern";
  }
  return "unknown";
}

std::string LintReport::ToText() const {
  std::string out;
  for (const LintFinding& f : findings) {
    if (f.rule_index >= 0) {
      out += "rule " + std::to_string(f.rule_index + 1);
      out += " (" + f.pattern + "): ";
    } else {
      out += "pattern " + f.pattern + ": ";
    }
    out += LintFindingKindName(f.kind);
    out += ": ";
    out += f.message;
    out += '\n';
  }
  return out;
}

util::Result<LintReport> LintWrapper(
    const ElogProgram& program,
    const std::vector<std::string>& extraction_patterns,
    const LintOptions& options) {
  MD_RETURN_NOT_OK(ValidateElog(program));

  LintReport report;
  report.rules_analyzed = static_cast<int32_t>(program.rules().size());

  const std::vector<std::string> defined = program.Patterns();
  const std::unordered_set<std::string> defined_set(defined.begin(),
                                                    defined.end());

  // Pattern-level checks are purely syntactic — they run for Δ wrappers too.
  for (const std::string& p : extraction_patterns) {
    if (p != "root" && !defined_set.count(p)) {
      report.findings.push_back({LintFinding::Kind::kUndefinedPattern, -1, p,
                                 "extraction pattern has no defining rule"});
    }
  }
  if (options.check_unused_patterns && !extraction_patterns.empty()) {
    std::unordered_set<std::string> used(extraction_patterns.begin(),
                                         extraction_patterns.end());
    for (const ElogRule& r : program.rules()) {
      used.insert(r.parent_pattern);
      for (const ElogCondition& c : r.conditions) {
        if (c.kind == ElogCondition::Kind::kPatternRef) used.insert(c.pattern);
      }
    }
    for (const std::string& p : defined) {
      if (!used.count(p)) {
        report.findings.push_back(
            {LintFinding::Kind::kUnusedPattern, -1, p,
             "defined but neither extracted nor referenced by any rule"});
      }
    }
  }

  if (program.UsesDeltaBuiltins()) {
    // Theorem 6.6: Δ wrappers have no monadic-datalog translation, so the
    // minimizer cannot run. The syntactic findings above still stand.
    report.delta_builtins = true;
    return report;
  }

  MD_ASSIGN_OR_RETURN(core::Program datalog, ElogToDatalog(program));
  analysis::MinimizeOptions mopts = options.minimize;
  mopts.roots.clear();
  for (const std::string& p : extraction_patterns) {
    core::PredId id = datalog.preds().Find(p == "root" ? p : "pat_" + p);
    if (id >= 0) mopts.roots.push_back(id);
  }
  if (mopts.roots.empty()) {
    // Nothing observable named (or none resolved): treat every pattern as
    // observable rather than declaring the whole wrapper dead.
    mopts.remove_unreachable = false;
  }
  MD_ASSIGN_OR_RETURN(analysis::MinimizeResult minimized,
                      analysis::Minimize(datalog, mopts));

  // ElogToDatalog is 1 rule : 1 rule, in order — fates index source rules.
  MD_CHECK(minimized.fates.size() == program.rules().size());
  for (size_t i = 0; i < minimized.fates.size(); ++i) {
    const ElogRule& rule = program.rules()[i];
    const RuleFate fate = minimized.fates[i];
    if (fate != RuleFate::kKept) {
      report.findings.push_back({FateKind(fate), static_cast<int32_t>(i),
                                 rule.head_pattern,
                                 std::string(FateMessage(fate)) + " — " +
                                     ToString(rule)});
    } else if (minimized.literals_removed[i] > 0) {
      report.findings.push_back(
          {LintFinding::Kind::kRedundantLiterals, static_cast<int32_t>(i),
           rule.head_pattern,
           std::to_string(minimized.literals_removed[i]) +
               " redundant body atom(s) in the datalog translation — " +
               ToString(rule)});
    }
  }

  // Deterministic order: rule findings by rule index, pattern findings last.
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     const int32_t ai = a.rule_index < 0 ? INT32_MAX : a.rule_index;
                     const int32_t bi = b.rule_index < 0 ? INT32_MAX : b.rule_index;
                     return ai < bi;
                   });
  return report;
}

}  // namespace mdatalog::elog
