#include "src/elog/to_datalog.h"

#include <map>

#include "src/core/database.h"

namespace mdatalog::elog {

namespace {

using core::Atom;
using core::MakeAtom;
using core::PredId;
using core::Rule;
using core::Term;
using core::VarId;

/// Per-rule variable allocator (Elog variables are named; datalog variables
/// are indices).
class VarMap {
 public:
  VarId Get(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    VarId id = static_cast<VarId>(names_.size());
    ids_.emplace(name, id);
    names_.push_back(name);
    return id;
  }
  VarId Fresh() {
    VarId id = static_cast<VarId>(names_.size());
    names_.push_back("z" + std::to_string(id));
    return id;
  }
  std::vector<std::string> names() { return names_; }

 private:
  std::map<std::string, VarId> ids_;
  std::vector<std::string> names_;
};

}  // namespace

util::Result<core::Program> ElogToDatalog(const ElogProgram& program,
                                          const std::string& query_pattern) {
  MD_RETURN_NOT_OK(ValidateElog(program));
  if (program.UsesDeltaBuiltins()) {
    return util::Status::InvalidArgument(
        "Elog⁻Δ builtins (before/notafter/notbefore) exceed MSO and have no "
        "datalog translation (Theorem 6.6)");
  }

  core::Program out;
  auto& preds = out.preds();
  PredId root = preds.MustIntern("root", 1);
  PredId child = preds.MustIntern("child", 2);
  PredId leaf = preds.MustIntern("leaf", 1);
  PredId firstsibling = preds.MustIntern("firstsibling", 1);
  PredId lastsibling = preds.MustIntern("lastsibling", 1);
  PredId nextsibling = preds.MustIntern("nextsibling", 2);

  auto pattern_pred = [&](const std::string& name) -> util::Result<PredId> {
    if (name == "root") return root;
    return preds.Intern("pat_" + name, 1);
  };

  /// Expands subelem/contains: appends child/label atoms walking `path` from
  /// `src`; returns the terminal variable (== src for the ε path).
  auto expand_path = [&](VarMap& vars, VarId src, const ElogPath& path,
                         std::vector<Atom>* body) -> VarId {
    VarId cur = src;
    for (const std::string& step : path.steps) {
      VarId next = vars.Fresh();
      body->push_back(MakeAtom(child, {Term::Var(cur), Term::Var(next)}));
      if (step != "_") {
        PredId lbl = preds.MustIntern(core::LabelPredName(step), 1);
        body->push_back(MakeAtom(lbl, {Term::Var(next)}));
      }
      cur = next;
    }
    return cur;
  };

  for (const ElogRule& rule : program.rules()) {
    VarMap vars;
    std::vector<Atom> body;

    VarId parent_var = vars.Get(rule.parent_var);
    MD_ASSIGN_OR_RETURN(PredId parent, pattern_pred(rule.parent_pattern));
    body.push_back(MakeAtom(parent, {Term::Var(parent_var)}));

    VarId head_var;
    if (rule.is_specialization()) {
      head_var = parent_var;
    } else {
      // The path has ≥1 step; the final step's variable is the head var.
      ElogPath prefix = rule.subelem;
      std::string last = prefix.steps.back();
      prefix.steps.pop_back();
      VarId before_last = expand_path(vars, parent_var, prefix, &body);
      head_var = vars.Get(rule.head_var);
      body.push_back(
          MakeAtom(child, {Term::Var(before_last), Term::Var(head_var)}));
      if (last != "_") {
        PredId lbl = preds.MustIntern(core::LabelPredName(last), 1);
        body.push_back(MakeAtom(lbl, {Term::Var(head_var)}));
      }
    }

    for (const ElogCondition& c : rule.conditions) {
      using K = ElogCondition::Kind;
      switch (c.kind) {
        case K::kLeaf:
          body.push_back(MakeAtom(leaf, {Term::Var(vars.Get(c.var1))}));
          break;
        case K::kFirstSibling:
          body.push_back(
              MakeAtom(firstsibling, {Term::Var(vars.Get(c.var1))}));
          break;
        case K::kLastSibling:
          body.push_back(
              MakeAtom(lastsibling, {Term::Var(vars.Get(c.var1))}));
          break;
        case K::kNextSibling:
          body.push_back(MakeAtom(nextsibling, {Term::Var(vars.Get(c.var1)),
                                                Term::Var(vars.Get(c.var2))}));
          break;
        case K::kContains: {
          // contains: like subelem but the target is c.var2.
          ElogPath prefix = c.path;
          std::string last = prefix.steps.back();
          prefix.steps.pop_back();
          VarId before_last =
              expand_path(vars, vars.Get(c.var1), prefix, &body);
          VarId target = vars.Get(c.var2);
          body.push_back(
              MakeAtom(child, {Term::Var(before_last), Term::Var(target)}));
          if (last != "_") {
            PredId lbl = preds.MustIntern(core::LabelPredName(last), 1);
            body.push_back(MakeAtom(lbl, {Term::Var(target)}));
          }
          break;
        }
        case K::kPatternRef: {
          MD_ASSIGN_OR_RETURN(PredId p, pattern_pred(c.pattern));
          body.push_back(MakeAtom(p, {Term::Var(vars.Get(c.var1))}));
          break;
        }
        default:
          return util::Status::Internal("Δ builtin slipped past the check");
      }
    }

    MD_ASSIGN_OR_RETURN(PredId head, pattern_pred(rule.head_pattern));
    Rule out_rule;
    out_rule.head = MakeAtom(head, {Term::Var(head_var)});
    out_rule.body = std::move(body);
    out_rule.var_names = vars.names();
    out.AddRule(std::move(out_rule));
  }

  if (!query_pattern.empty()) {
    MD_ASSIGN_OR_RETURN(PredId q, pattern_pred(query_pattern));
    out.set_query_pred(q);
  }
  return out;
}

}  // namespace mdatalog::elog
