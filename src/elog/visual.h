#pragma once

#include <string>
#include <vector>

#include "src/elog/ast.h"
#include "src/elog/eval.h"
#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file visual.h
/// Visual wrapper specification (Section 6.2), Lixto-style: the user defines
/// a wrapper from an example document mainly by "mouse clicks". Here clicks
/// are node handles; the session implements the interaction loop of the
/// paper:
///
///  1. name a destination pattern and pick a parent pattern;
///  2. the system highlights the parent pattern's instances
///     (MatchesOf);
///  3. the user selects a region inside one instance — the system infers the
///     best path π from the instance to the selected node (InferPath) and
///     generates  p(x) ← p0(x0), subelemπ(x0, x)  (SelectNode);
///  4. the rule is refined by generalizing path steps to wildcards or adding
///     conditions (GeneralizeStep / AddCondition).

namespace mdatalog::elog {

class VisualSession {
 public:
  explicit VisualSession(const tree::Tree& example) : example_(example) {}

  /// Patterns defined so far (plus the built-in "root").
  std::vector<std::string> Patterns() const;

  /// Instances of `pattern` on the example document under the program built
  /// so far — what the GUI would highlight.
  util::Result<std::vector<tree::NodeId>> MatchesOf(
      const std::string& pattern) const;

  /// The label path from `ancestor` (exclusive) down to `node` (inclusive).
  /// Fails unless ancestor is a proper ancestor of node.
  util::Result<ElogPath> InferPath(tree::NodeId ancestor,
                                   tree::NodeId node) const;

  /// The click: derive p(x) ← p0(x0), subelemπ(x0, x) from one example. The
  /// clicked `target` must lie strictly below `parent_instance`, which must
  /// currently match `parent_pattern`. Returns the index of the new rule.
  util::Result<int32_t> SelectNode(const std::string& new_pattern,
                                   const std::string& parent_pattern,
                                   tree::NodeId parent_instance,
                                   tree::NodeId target);

  /// Replaces step `step_index` of rule `rule_index`'s path by the wildcard
  /// "_" (the generalization move of the visual process).
  util::Status GeneralizeStep(int32_t rule_index, int32_t step_index);

  /// Adds a condition to an existing rule.
  util::Status AddCondition(int32_t rule_index, ElogCondition condition);

  const ElogProgram& program() const { return program_; }

 private:
  const tree::Tree& example_;
  ElogProgram program_;
};

}  // namespace mdatalog::elog
