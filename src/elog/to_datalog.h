#pragma once

#include "src/core/ast.h"
#include "src/elog/ast.h"
#include "src/util/result.h"

/// \file to_datalog.h
/// The easy direction of Theorem 6.5: Elog⁻ is a fragment of monadic datalog
/// over τ_ur ∪ {child} once the subelemπ / containsπ shortcuts are expanded
/// per Definition 6.1:
///
///   subelem_ε(x, y)   :=  x = y           (variable substitution)
///   subelem_{_.π}(x,y) :=  child(x, z), subelem_π(z, y)
///   subelem_{a.π}(x,y) :=  child(x, z), label_a(z), subelem_π(z, y)
///
/// The root pattern becomes the extensional root predicate; pattern
/// predicates become intensional unary predicates; condition predicates map
/// to their τ_ur counterparts. Δ builtins have no MSO/datalog counterpart
/// (Theorem 6.6) and are rejected.

namespace mdatalog::elog {

/// Translates an Elog⁻ program. `query_pattern` (optional, may be empty)
/// designates the program's query predicate.
util::Result<core::Program> ElogToDatalog(const ElogProgram& program,
                                          const std::string& query_pattern = "");

}  // namespace mdatalog::elog
