#include "src/elog/from_datalog.h"

#include <set>

#include "src/core/database.h"
#include "src/tmnf/normal_form.h"
#include "src/tmnf/pipeline.h"
#include "src/util/check.h"

namespace mdatalog::elog {

namespace {

using core::Atom;
using core::PredId;
using core::Rule;

/// Kinds of unary predicates a TMNF body can mention.
enum class UnaryKind { kPattern, kRoot, kLeaf, kLastSibling, kLabel };

struct UnaryInfo {
  UnaryKind kind;
  std::string name;  ///< pattern name or label
};

class ElogTranslator {
 public:
  explicit ElogTranslator(const core::Program& tmnf)
      : tmnf_(tmnf), intensional_(tmnf.IntensionalMask()) {}

  util::Result<ElogProgram> Run() {
    EmitDomPattern();
    for (const Rule& rule : tmnf_.rules()) {
      MD_RETURN_NOT_OK(TranslateRule(rule));
    }
    EmitHelperPatterns();
    MD_RETURN_NOT_OK(ValidateElog(out_));
    return std::move(out_);
  }

 private:
  static constexpr const char* kDom = "__elogdom";

  static std::string LabelPattern(const std::string& label) {
    return "__lbl_" + label;
  }
  static std::string RootPattern() { return "__isroot"; }

  UnaryInfo ClassifyUnary(PredId pred) const {
    const std::string& name = tmnf_.preds().Name(pred);
    if (intensional_[pred]) return {UnaryKind::kPattern, name};
    if (name == "root") return {UnaryKind::kRoot, name};
    if (name == "leaf") return {UnaryKind::kLeaf, name};
    if (name == "lastsibling") return {UnaryKind::kLastSibling, name};
    std::string label = core::LabelFromPredName(name);
    MD_CHECK(!label.empty());
    return {UnaryKind::kLabel, label};
  }

  void EmitDomPattern() {
    ElogRule r1;  // dom(X) ← root(X).
    r1.head_pattern = kDom;
    r1.head_var = "X";
    r1.parent_pattern = "root";
    r1.parent_var = "X";
    out_.AddRule(r1);
    ElogRule r2;  // dom(X) ← dom(X0), subelem__(X0, X).
    r2.head_pattern = kDom;
    r2.head_var = "X";
    r2.parent_pattern = kDom;
    r2.parent_var = "X0";
    r2.subelem.steps = {"_"};
    out_.AddRule(r2);
  }

  void EmitHelperPatterns() {
    for (const std::string& label : used_labels_) {
      // __lbl_a(X) ← dom(X0), subelem_a(X0, X). [An a-labeled *root* is not
      // reachable by subelem — the Theorem 6.5 construction's known corner;
      // see from_datalog.h.]
      ElogRule r;
      r.head_pattern = LabelPattern(label);
      r.head_var = "X";
      r.parent_pattern = kDom;
      r.parent_var = "X0";
      r.subelem.steps = {label};
      out_.AddRule(std::move(r));
    }
    if (used_root_pattern_) {
      ElogRule r;
      r.head_pattern = RootPattern();
      r.head_var = "X";
      r.parent_pattern = "root";
      r.parent_var = "X";
      out_.AddRule(std::move(r));
    }
  }

  static ElogCondition PatternRef(const std::string& pattern,
                                  const std::string& var) {
    ElogCondition c;
    c.kind = ElogCondition::Kind::kPatternRef;
    c.pattern = pattern;
    c.var1 = var;
    return c;
  }

  /// A specialization rule with dom parent.
  void DomRule(const std::string& head, std::vector<ElogCondition> conds) {
    ElogRule r;
    r.head_pattern = head;
    r.head_var = "X";
    r.parent_pattern = kDom;
    r.parent_var = "X";
    r.conditions = std::move(conds);
    out_.AddRule(std::move(r));
  }

  /// Condition (or pattern reference) testing `info` on variable `var`.
  ElogCondition UnaryConditionOn(const UnaryInfo& info,
                                 const std::string& var) {
    switch (info.kind) {
      case UnaryKind::kPattern:
        return PatternRef(info.name, var);
      case UnaryKind::kLabel:
        used_labels_.insert(info.name);
        return PatternRef(LabelPattern(info.name), var);
      case UnaryKind::kRoot:
        used_root_pattern_ = true;
        return PatternRef(RootPattern(), var);
      case UnaryKind::kLeaf: {
        ElogCondition c;
        c.kind = ElogCondition::Kind::kLeaf;
        c.var1 = var;
        return c;
      }
      case UnaryKind::kLastSibling: {
        ElogCondition c;
        c.kind = ElogCondition::Kind::kLastSibling;
        c.var1 = var;
        return c;
      }
    }
    MD_CHECK(false);
    return {};
  }

  util::Status TranslateRule(const Rule& rule) {
    const std::string head = tmnf_.preds().Name(rule.head.pred);
    if (rule.body.size() == 1) {
      // Form (1): p(x) ← p0(x).
      UnaryInfo info = ClassifyUnary(rule.body[0].pred);
      if (info.kind == UnaryKind::kRoot) {
        ElogRule r;
        r.head_pattern = head;
        r.head_var = "X";
        r.parent_pattern = "root";
        r.parent_var = "X";
        out_.AddRule(r);
      } else if (info.kind == UnaryKind::kPattern) {
        ElogRule r;  // specialization with p0 as the parent pattern
        r.head_pattern = head;
        r.head_var = "X";
        r.parent_pattern = info.name;
        r.parent_var = "X";
        out_.AddRule(r);
      } else {
        DomRule(head, {UnaryConditionOn(info, "X")});
      }
      return util::Status::OK();
    }
    MD_CHECK(rule.body.size() == 2);
    const Atom& a = rule.body[0];
    const Atom& b = rule.body[1];

    if (a.args.size() == 1 && b.args.size() == 1) {
      // Form (3): p(x) ← p0(x), p1(x).
      std::vector<ElogCondition> conds;
      bool root_test = false;
      for (const Atom* atom : {&a, &b}) {
        UnaryInfo info = ClassifyUnary(atom->pred);
        if (info.kind == UnaryKind::kRoot) {
          root_test = true;
          continue;
        }
        conds.push_back(UnaryConditionOn(info, "X"));
      }
      if (root_test) {
        ElogRule r;
        r.head_pattern = head;
        r.head_var = "X";
        r.parent_pattern = "root";
        r.parent_var = "X";
        r.conditions = std::move(conds);
        out_.AddRule(std::move(r));
      } else {
        DomRule(head, std::move(conds));
      }
      return util::Status::OK();
    }

    // Form (2): p(x) ← p0(x0), B(x0, x) with B = R or R^-1.
    const Atom& unary = a.args.size() == 1 ? a : b;
    const Atom& binary = a.args.size() == 2 ? a : b;
    core::VarId head_v = rule.head.args[0].value;
    bool forward = binary.args[1].value == head_v;  // B = R
    const std::string& rel = tmnf_.preds().Name(binary.pred);
    UnaryInfo p0 = ClassifyUnary(unary.pred);

    if (rel == "nextsibling") {
      // p(x) ← dom(x), nextsibling(x0, x) [or mirrored], p0(x0).
      ElogCondition ns;
      ns.kind = ElogCondition::Kind::kNextSibling;
      if (forward) {
        ns.var1 = "X0";
        ns.var2 = "X";
      } else {
        ns.var1 = "X";
        ns.var2 = "X0";
      }
      DomRule(head, {std::move(ns), UnaryConditionOn(p0, "X0")});
      return util::Status::OK();
    }
    MD_CHECK(rel == "firstchild");
    if (forward) {
      // p(X) ← p0'(X0), subelem__(X0, X), firstsibling(X) — the proof's
      // upward-compatible form with p0 referenced at the parent.
      ElogRule r;
      r.head_pattern = head;
      r.head_var = "X";
      r.parent_pattern = kDom;
      r.parent_var = "X0";
      r.subelem.steps = {"_"};
      ElogCondition fs;
      fs.kind = ElogCondition::Kind::kFirstSibling;
      fs.var1 = "X";
      r.conditions.push_back(std::move(fs));
      r.conditions.push_back(UnaryConditionOn(p0, "X0"));
      out_.AddRule(std::move(r));
    } else {
      // p(X) ← dom(X), contains__(X, Y), firstsibling(Y), p0(Y).
      ElogCondition contains;
      contains.kind = ElogCondition::Kind::kContains;
      contains.var1 = "X";
      contains.var2 = "Y";
      contains.path.steps = {"_"};
      ElogCondition fs;
      fs.kind = ElogCondition::Kind::kFirstSibling;
      fs.var1 = "Y";
      DomRule(head, {std::move(contains), std::move(fs),
                     UnaryConditionOn(p0, "Y")});
    }
    return util::Status::OK();
  }

  const core::Program& tmnf_;
  std::vector<bool> intensional_;
  ElogProgram out_;
  std::set<std::string> used_labels_;
  bool used_root_pattern_ = false;
};

}  // namespace

util::Result<ElogProgram> DatalogToElog(const core::Program& input) {
  MD_ASSIGN_OR_RETURN(core::Program tmnf, tmnf::ToTmnf(input));
  MD_RETURN_NOT_OK(tmnf::CheckTmnf(tmnf));
  return ElogTranslator(tmnf).Run();
}

}  // namespace mdatalog::elog
