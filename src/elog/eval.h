#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/elog/ast.h"
#include "src/tree/tree.h"
#include "src/util/deadline.h"
#include "src/util/result.h"

/// \file eval.h
/// Native evaluation of Elog⁻ / Elog⁻Δ programs over document trees.
///
/// The evaluator runs the pattern fixpoint directly: the root pattern holds
/// of the root node; each rule extends its head pattern from the parent
/// pattern's instances through the subelem path and the conditions. The Δ
/// builtins (before%, notafter, notbefore) are interpreted natively against
/// document order and child positions — they have no datalog counterpart
/// (Theorem 6.6: Elog⁻Δ exceeds MSO).

namespace mdatalog::elog {

/// The extracted pattern instances (the "information extraction functions"
/// the wrapper defines — Section 6 intro).
struct ElogResult {
  std::map<std::string, std::vector<tree::NodeId>> matches;  ///< sorted

  const std::vector<tree::NodeId>& Of(const std::string& pattern) const;
};

/// Nodes reachable from `start` via the fixed path π (Definition 6.1);
/// "_" matches any label. Returned sorted.
std::vector<tree::NodeId> PathTargets(const tree::Tree& t, tree::NodeId start,
                                      const ElogPath& path);

/// Default bound on total pattern-instance insertions (guard against
/// pathological programs).
inline constexpr int64_t kDefaultMaxDerivations = 1 << 22;

/// Evaluates the program. `max_derivations` bounds total pattern-instance
/// insertions; `control` (nullable) is polled cooperatively inside the
/// pattern fixpoint — a deadline or cancellation unwinds with the typed
/// status (kDeadlineExceeded / kCancelled) instead of finishing the page.
util::Result<ElogResult> EvaluateElog(
    const ElogProgram& program, const tree::Tree& t,
    int64_t max_derivations = kDefaultMaxDerivations,
    const util::EvalControl* control = nullptr);

/// An Elog program validated once, for repeated evaluation over many
/// documents: the structural checks of ValidateElog (and the pattern-list
/// computation) run at Prepare, not per page. Immutable afterwards — safe to
/// share across evaluation threads.
class PreparedElogProgram {
 public:
  /// An empty prepared program (no rules, no patterns) — the state before
  /// Prepare assigns a real one; kept public so owning structs are
  /// default-constructible.
  PreparedElogProgram() = default;

  static util::Result<PreparedElogProgram> Prepare(ElogProgram program);

  const ElogProgram& program() const { return program_; }
  /// Pattern predicates in first-definition order.
  const std::vector<std::string>& patterns() const { return patterns_; }

 private:
  ElogProgram program_;
  std::vector<std::string> patterns_;
};

/// Evaluates a prepared program, skipping re-validation.
util::Result<ElogResult> EvaluateElog(
    const PreparedElogProgram& prepared, const tree::Tree& t,
    int64_t max_derivations = kDefaultMaxDerivations,
    const util::EvalControl* control = nullptr);

}  // namespace mdatalog::elog
