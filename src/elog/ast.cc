#include "src/elog/ast.h"

#include <cctype>
#include <map>
#include <set>

#include "src/util/check.h"

namespace mdatalog::elog {

util::Result<ElogPath> ElogPath::Parse(const std::string& text) {
  ElogPath path;
  if (text.empty()) return path;
  std::string step;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '.') {
      if (step.empty()) {
        return util::Status::InvalidArgument("empty step in path '" + text +
                                             "'");
      }
      path.steps.push_back(step);
      step.clear();
    } else {
      step += text[i];
    }
  }
  return path;
}

std::string ElogPath::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += '.';
    out += steps[i];
  }
  return out;
}

std::vector<std::string> ElogProgram::Patterns() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const ElogRule& r : rules_) {
    if (seen.insert(r.head_pattern).second) out.push_back(r.head_pattern);
  }
  return out;
}

bool ElogProgram::UsesDeltaBuiltins() const {
  for (const ElogRule& r : rules_) {
    for (const ElogCondition& c : r.conditions) {
      if (c.kind == ElogCondition::Kind::kBefore ||
          c.kind == ElogCondition::Kind::kNotAfter ||
          c.kind == ElogCondition::Kind::kNotBefore) {
        return true;
      }
    }
  }
  return false;
}

util::Status ValidateElog(const ElogProgram& program) {
  for (const ElogRule& r : program.rules()) {
    if (r.head_pattern == "root") {
      return util::Status::InvalidArgument(
          "'root' is reserved for the root pattern");
    }
    if (r.is_specialization() && r.head_var != r.parent_var) {
      return util::Status::InvalidArgument(
          "specialization rule must reuse the parent variable: " +
          ToString(r));
    }
    if (!r.is_specialization() && r.head_var == r.parent_var) {
      return util::Status::InvalidArgument(
          "subelem target must be a fresh variable: " + ToString(r));
    }
    // Connectivity: every variable must be reachable from the parent/head
    // variables through condition atoms (Definition 6.2 requires a
    // connected query graph).
    std::set<std::string> reachable = {r.parent_var, r.head_var};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const ElogCondition& c : r.conditions) {
        std::vector<std::string> vars = {c.var1};
        if (!c.var2.empty()) vars.push_back(c.var2);
        if (!c.var3.empty()) vars.push_back(c.var3);
        bool any = false;
        for (const std::string& v : vars) any |= reachable.count(v) > 0;
        if (any) {
          for (const std::string& v : vars) {
            if (reachable.insert(v).second) grew = true;
          }
        }
      }
    }
    for (const ElogCondition& c : r.conditions) {
      if (c.kind == ElogCondition::Kind::kContains && c.path.empty()) {
        return util::Status::InvalidArgument(
            "contains requires a non-ε path: " + ToString(r));
      }
      std::vector<std::string> vars = {c.var1};
      if (!c.var2.empty()) vars.push_back(c.var2);
      if (!c.var3.empty()) vars.push_back(c.var3);
      for (const std::string& v : vars) {
        if (reachable.count(v) == 0) {
          return util::Status::InvalidArgument(
              "disconnected variable '" + v + "' in rule: " + ToString(r));
        }
      }
    }
  }
  return util::Status::OK();
}

namespace {

std::string ConditionToString(const ElogCondition& c) {
  using K = ElogCondition::Kind;
  switch (c.kind) {
    case K::kLeaf: return "leaf(" + c.var1 + ")";
    case K::kFirstSibling: return "firstsibling(" + c.var1 + ")";
    case K::kLastSibling: return "lastsibling(" + c.var1 + ")";
    case K::kNextSibling:
      return "nextsibling(" + c.var1 + ", " + c.var2 + ")";
    case K::kContains:
      return "contains(" + c.var1 + ", \"" + c.path.ToString() + "\", " +
             c.var2 + ")";
    case K::kPatternRef: return c.pattern + "(" + c.var1 + ")";
    case K::kBefore:
      return "before(" + c.var1 + ", \"" + c.path.ToString() + "\", " +
             c.var2 + ", " + c.var3 + ", " + std::to_string(c.alpha_pct) +
             ", " + std::to_string(c.beta_pct) + ")";
    case K::kNotAfter:
      return "notafter(" + c.var1 + ", \"" + c.path.ToString() + "\", " +
             c.var2 + ")";
    case K::kNotBefore:
      return "notbefore(" + c.var1 + ", \"" + c.path.ToString() + "\", " +
             c.var2 + ")";
  }
  return "?";
}

}  // namespace

std::string ToString(const ElogRule& r) {
  std::string out = r.head_pattern + "(" + r.head_var + ") <- " +
                    r.parent_pattern + "(" + r.parent_var + ")";
  if (!r.is_specialization()) {
    out += ", subelem(" + r.parent_var + ", \"" + r.subelem.ToString() +
           "\", " + r.head_var + ")";
  }
  for (const ElogCondition& c : r.conditions) {
    out += ", " + ConditionToString(c);
  }
  out += ".";
  return out;
}

std::string ToString(const ElogProgram& program) {
  std::string out;
  for (const ElogRule& r : program.rules()) {
    out += ToString(r);
    out += '\n';
  }
  return out;
}

// --- parser -----------------------------------------------------------------

namespace {

class ElogParser {
 public:
  explicit ElogParser(std::string_view text) : text_(text) {}

  util::Result<ElogProgram> Parse() {
    ElogProgram program;
    Skip();
    while (pos_ < text_.size()) {
      MD_RETURN_NOT_OK(ParseRule(&program));
      Skip();
    }
    MD_RETURN_NOT_OK(ValidateElog(program));
    return program;
  }

 private:
  util::Status ParseRule(ElogProgram* program) {
    ElogRule rule;
    MD_RETURN_NOT_OK(ParseIdent(&rule.head_pattern));
    MD_RETURN_NOT_OK(Expect("("));
    MD_RETURN_NOT_OK(ParseIdent(&rule.head_var));
    MD_RETURN_NOT_OK(Expect(")"));
    if (!Consume("<-") && !Consume(":-")) {
      return Error("expected '<-'");
    }
    // Parent pattern atom.
    MD_RETURN_NOT_OK(ParseIdent(&rule.parent_pattern));
    MD_RETURN_NOT_OK(Expect("("));
    MD_RETURN_NOT_OK(ParseIdent(&rule.parent_var));
    MD_RETURN_NOT_OK(Expect(")"));

    bool saw_subelem = false;
    while (Consume(",")) {
      std::string word;
      MD_RETURN_NOT_OK(ParseIdent(&word));
      MD_RETURN_NOT_OK(Expect("("));
      if (word == "subelem") {
        if (saw_subelem) return Error("duplicate subelem atom");
        saw_subelem = true;
        std::string src, path_text, dst;
        MD_RETURN_NOT_OK(ParseIdent(&src));
        MD_RETURN_NOT_OK(Expect(","));
        MD_RETURN_NOT_OK(ParseQuoted(&path_text));
        MD_RETURN_NOT_OK(Expect(","));
        MD_RETURN_NOT_OK(ParseIdent(&dst));
        MD_RETURN_NOT_OK(Expect(")"));
        if (src != rule.parent_var || dst != rule.head_var) {
          return Error("subelem must go from the parent variable to the "
                       "head variable");
        }
        MD_ASSIGN_OR_RETURN(rule.subelem, ElogPath::Parse(path_text));
        continue;
      }
      ElogCondition c;
      using K = ElogCondition::Kind;
      if (word == "leaf" || word == "firstsibling" || word == "lastsibling") {
        c.kind = word == "leaf" ? K::kLeaf
                 : word == "firstsibling" ? K::kFirstSibling
                                          : K::kLastSibling;
        MD_RETURN_NOT_OK(ParseIdent(&c.var1));
      } else if (word == "nextsibling") {
        c.kind = K::kNextSibling;
        MD_RETURN_NOT_OK(ParseIdent(&c.var1));
        MD_RETURN_NOT_OK(Expect(","));
        MD_RETURN_NOT_OK(ParseIdent(&c.var2));
      } else if (word == "contains" || word == "notafter" ||
                 word == "notbefore") {
        c.kind = word == "contains" ? K::kContains
                 : word == "notafter" ? K::kNotAfter
                                      : K::kNotBefore;
        std::string path_text;
        MD_RETURN_NOT_OK(ParseIdent(&c.var1));
        MD_RETURN_NOT_OK(Expect(","));
        MD_RETURN_NOT_OK(ParseQuoted(&path_text));
        MD_RETURN_NOT_OK(Expect(","));
        MD_RETURN_NOT_OK(ParseIdent(&c.var2));
        MD_ASSIGN_OR_RETURN(c.path, ElogPath::Parse(path_text));
      } else if (word == "before") {
        c.kind = K::kBefore;
        std::string path_text;
        MD_RETURN_NOT_OK(ParseIdent(&c.var1));
        MD_RETURN_NOT_OK(Expect(","));
        MD_RETURN_NOT_OK(ParseQuoted(&path_text));
        MD_RETURN_NOT_OK(Expect(","));
        MD_RETURN_NOT_OK(ParseIdent(&c.var2));
        MD_RETURN_NOT_OK(Expect(","));
        MD_RETURN_NOT_OK(ParseIdent(&c.var3));
        MD_RETURN_NOT_OK(Expect(","));
        MD_RETURN_NOT_OK(ParseInt(&c.alpha_pct));
        MD_RETURN_NOT_OK(Expect(","));
        MD_RETURN_NOT_OK(ParseInt(&c.beta_pct));
        MD_ASSIGN_OR_RETURN(c.path, ElogPath::Parse(path_text));
      } else {
        // Pattern reference.
        c.kind = K::kPatternRef;
        c.pattern = word;
        MD_RETURN_NOT_OK(ParseIdent(&c.var1));
      }
      MD_RETURN_NOT_OK(Expect(")"));
      rule.conditions.push_back(std::move(c));
    }
    MD_RETURN_NOT_OK(Expect("."));
    program->AddRule(std::move(rule));
    return util::Status::OK();
  }

  util::Status ParseIdent(std::string* out) {
    Skip();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected identifier");
    *out = std::string(text_.substr(start, pos_ - start));
    return util::Status::OK();
  }

  util::Status ParseQuoted(std::string* out) {
    Skip();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected quoted path");
    }
    ++pos_;
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
    if (pos_ >= text_.size()) return Error("unterminated quoted path");
    *out = std::string(text_.substr(start, pos_ - start));
    ++pos_;
    return util::Status::OK();
  }

  util::Status ParseInt(int32_t* out) {
    Skip();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected integer");
    *out = std::stoi(std::string(text_.substr(start, pos_ - start)));
    return util::Status::OK();
  }

  util::Status Expect(std::string_view lit) {
    if (!Consume(lit)) {
      return Error("expected '" + std::string(lit) + "'");
    }
    return util::Status::OK();
  }

  bool Consume(std::string_view lit) {
    Skip();
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  void Skip() {
    while (pos_ < text_.size()) {
      char ch = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(ch))) {
        ++pos_;
      } else if (ch == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  util::Status Error(const std::string& msg) {
    return util::Status::InvalidArgument(msg + " at position " +
                                         std::to_string(pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<ElogProgram> ParseElog(std::string_view text) {
  return ElogParser(text).Parse();
}

}  // namespace mdatalog::elog
