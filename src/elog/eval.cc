#include "src/elog/eval.h"

#include <algorithm>
#include <set>

#include "src/util/check.h"

namespace mdatalog::elog {

using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

const std::vector<NodeId>& ElogResult::Of(const std::string& pattern) const {
  static const std::vector<NodeId> kEmpty;
  auto it = matches.find(pattern);
  return it == matches.end() ? kEmpty : it->second;
}

std::vector<NodeId> PathTargets(const Tree& t, NodeId start,
                                const ElogPath& path) {
  std::vector<NodeId> frontier = {start};
  for (const std::string& step : path.steps) {
    std::vector<NodeId> next;
    for (NodeId n : frontier) {
      for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
        if (step == "_" || t.label_name(c) == step) next.push_back(c);
      }
    }
    frontier = std::move(next);
  }
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());
  return frontier;
}

namespace {

/// Evaluation state: pattern extents as bitsets.
class ElogEvaluator {
 public:
  /// `patterns` (optional) is the precomputed program.Patterns() list — a
  /// prepared program supplies it so repeated evaluation skips the per-page
  /// rule walk along with the validation.
  ElogEvaluator(const ElogProgram& program, const Tree& t, int64_t budget,
                bool validate = true,
                const std::vector<std::string>* patterns = nullptr,
                const util::EvalControl* control = nullptr)
      : program_(program),
        t_(t),
        budget_(budget),
        validate_(validate),
        patterns_(patterns),
        control_(control),
        ticker_(control),
        ranks_(t.PreorderRanks()) {
    extents_["root"] = std::set<NodeId>{t.root()};
  }

  util::Result<ElogResult> Run() {
    if (validate_) MD_RETURN_NOT_OK(ValidateElog(program_));
    const std::vector<std::string> own_patterns =
        patterns_ == nullptr ? program_.Patterns() : std::vector<std::string>();
    for (const std::string& p :
         patterns_ != nullptr ? *patterns_ : own_patterns) {
      extents_[p];  // create
    }
    bool changed = true;
    while (changed) {
      if (control_ != nullptr) MD_RETURN_NOT_OK(control_->Check());
      changed = false;
      for (const ElogRule& rule : program_.rules()) {
        MD_ASSIGN_OR_RETURN(bool grew, ApplyRule(rule));
        changed |= grew;
      }
    }
    ElogResult result;
    for (const auto& [name, ext] : extents_) {
      if (name == "root") continue;
      result.matches[name] = std::vector<NodeId>(ext.begin(), ext.end());
    }
    return result;
  }

 private:
  util::Result<bool> ApplyRule(const ElogRule& rule) {
    auto parent_it = extents_.find(rule.parent_pattern);
    if (parent_it == extents_.end()) {
      return util::Status::InvalidArgument("unknown parent pattern '" +
                                           rule.parent_pattern + "'");
    }
    bool grew = false;
    std::set<NodeId>& head_extent = extents_[rule.head_pattern];
    // Iterate over a snapshot (extents may grow during the pass).
    std::vector<NodeId> parents(parent_it->second.begin(),
                                parent_it->second.end());
    for (NodeId p : parents) {
      std::vector<NodeId> candidates =
          rule.is_specialization() ? std::vector<NodeId>{p}
                                   : PathTargets(t_, p, rule.subelem);
      for (NodeId x : candidates) {
        // Strided deadline/cancel poll: the (parent × candidate) product is
        // where a pathological page spends its time.
        MD_RETURN_NOT_OK(ticker_.Tick());
        if (head_extent.count(x) > 0) continue;
        std::map<std::string, NodeId> binding = {{rule.parent_var, p},
                                                 {rule.head_var, x}};
        MD_ASSIGN_OR_RETURN(bool ok, CheckConditions(rule, binding, 0));
        if (ok) {
          head_extent.insert(x);
          grew = true;
          if (--budget_ < 0) {
            return util::Status::ResourceExhausted(
                "Elog evaluation exceeded max_derivations");
          }
        }
      }
    }
    return grew;
  }

  /// Backtracking check of the conditions from index `i` under `binding`.
  util::Result<bool> CheckConditions(const ElogRule& rule,
                                     std::map<std::string, NodeId>& binding,
                                     size_t i) {
    // One decrement per backtracking step: condition chains with unbound
    // pattern-ref / contains variables branch combinatorially, so the poll
    // must live inside the recursion, not only at the candidate level.
    MD_RETURN_NOT_OK(ticker_.Tick());
    if (i == rule.conditions.size()) return true;
    const ElogCondition& c = rule.conditions[i];
    using K = ElogCondition::Kind;
    auto bound = [&](const std::string& v) -> NodeId {
      auto it = binding.find(v);
      return it == binding.end() ? kNoNode : it->second;
    };
    auto with = [&](const std::string& v, NodeId n,
                    auto&& cont) -> util::Result<bool> {
      bool fresh = binding.find(v) == binding.end();
      if (!fresh) {
        if (binding[v] != n) return false;
        return cont();
      }
      binding[v] = n;
      auto r = cont();
      binding.erase(v);
      return r;
    };

    switch (c.kind) {
      case K::kLeaf:
      case K::kFirstSibling:
      case K::kLastSibling: {
        NodeId n = bound(c.var1);
        if (n == kNoNode) {
          return util::Status::InvalidArgument(
              "unbound variable in unary condition: " + c.var1);
        }
        bool ok = c.kind == K::kLeaf ? t_.IsLeaf(n)
                  : c.kind == K::kFirstSibling ? t_.IsFirstSibling(n)
                                               : t_.IsLastSibling(n);
        if (!ok) return false;
        return CheckConditions(rule, binding, i + 1);
      }
      case K::kNextSibling: {
        NodeId a = bound(c.var1), b = bound(c.var2);
        if (a != kNoNode) {
          NodeId succ = t_.next_sibling(a);
          if (succ == kNoNode) return false;
          return with(c.var2, succ,
                      [&] { return CheckConditions(rule, binding, i + 1); });
        }
        if (b != kNoNode) {
          NodeId pred = t_.prev_sibling(b);
          if (pred == kNoNode) return false;
          return with(c.var1, pred,
                      [&] { return CheckConditions(rule, binding, i + 1); });
        }
        return util::Status::InvalidArgument(
            "nextsibling with two unbound variables");
      }
      case K::kContains: {
        NodeId src = bound(c.var1);
        if (src == kNoNode) {
          return util::Status::InvalidArgument(
              "contains source variable unbound: " + c.var1);
        }
        for (NodeId target : PathTargets(t_, src, c.path)) {
          MD_ASSIGN_OR_RETURN(
              bool ok, with(c.var2, target, [&] {
                return CheckConditions(rule, binding, i + 1);
              }));
          if (ok) return true;
        }
        return false;
      }
      case K::kPatternRef: {
        auto ext_it = extents_.find(c.pattern);
        if (ext_it == extents_.end()) {
          return util::Status::InvalidArgument("unknown pattern '" +
                                               c.pattern + "'");
        }
        NodeId n = bound(c.var1);
        if (n != kNoNode) {
          if (ext_it->second.count(n) == 0) return false;
          return CheckConditions(rule, binding, i + 1);
        }
        for (NodeId m : ext_it->second) {
          MD_ASSIGN_OR_RETURN(bool ok, with(c.var1, m, [&] {
                                return CheckConditions(rule, binding, i + 1);
                              }));
          if (ok) return true;
        }
        return false;
      }
      case K::kNotAfter:
      case K::kNotBefore: {
        NodeId src = bound(c.var1);
        NodeId y = bound(c.var2);
        if (src == kNoNode || y == kNoNode) {
          return util::Status::InvalidArgument(
              "notafter/notbefore require bound variables");
        }
        for (NodeId u : PathTargets(t_, src, c.path)) {
          if (c.kind == K::kNotAfter && ranks_[y] > ranks_[u]) return false;
          if (c.kind == K::kNotBefore && ranks_[y] < ranks_[u]) return false;
        }
        return CheckConditions(rule, binding, i + 1);
      }
      case K::kBefore: {
        // before_{π,α%-β%}(x0, x, y): y reachable from x0 via π, and y lies
        // between k·α/100 and k·β/100 child-positions after x, where k is
        // the number of x0's children.
        NodeId x0 = bound(c.var1);
        NodeId x = bound(c.var2);
        if (x0 == kNoNode || x == kNoNode) {
          return util::Status::InvalidArgument(
              "before requires bound first and second variables");
        }
        int64_t k = t_.NumChildren(x0);
        MD_ASSIGN_OR_RETURN(int64_t pos_x, ChildPosition(x0, x));
        for (NodeId y : PathTargets(t_, x0, c.path)) {
          auto pos_y = ChildPosition(x0, y);
          if (!pos_y.ok()) continue;
          int64_t diff = *pos_y - pos_x;
          if (100 * diff < k * c.alpha_pct || 100 * diff > k * c.beta_pct) {
            continue;
          }
          MD_ASSIGN_OR_RETURN(bool ok, with(c.var3, y, [&] {
                                return CheckConditions(rule, binding, i + 1);
                              }));
          if (ok) return true;
        }
        return false;
      }
    }
    return util::Status::Internal("unreachable condition kind");
  }

  /// 1-based index (among x0's children) of the child of x0 that is an
  /// ancestor-or-self of u.
  util::Result<int64_t> ChildPosition(NodeId x0, NodeId u) {
    NodeId cur = u;
    while (cur != kNoNode && t_.parent(cur) != x0) cur = t_.parent(cur);
    if (cur == kNoNode) {
      return util::Status::NotFound("node not below the reference node");
    }
    int64_t pos = 1;
    for (NodeId s = t_.prev_sibling(cur); s != kNoNode;
         s = t_.prev_sibling(s)) {
      ++pos;
    }
    return pos;
  }

  const ElogProgram& program_;
  const Tree& t_;
  int64_t budget_;
  bool validate_;
  const std::vector<std::string>* patterns_;  // nullable
  const util::EvalControl* control_;          // nullable
  util::EvalTicker ticker_;
  std::vector<int32_t> ranks_;
  std::map<std::string, std::set<NodeId>> extents_;
};

}  // namespace

util::Result<ElogResult> EvaluateElog(const ElogProgram& program,
                                      const Tree& t, int64_t max_derivations,
                                      const util::EvalControl* control) {
  return ElogEvaluator(program, t, max_derivations, /*validate=*/true,
                       /*patterns=*/nullptr, control)
      .Run();
}

util::Result<PreparedElogProgram> PreparedElogProgram::Prepare(
    ElogProgram program) {
  MD_RETURN_NOT_OK(ValidateElog(program));
  PreparedElogProgram prepared;
  prepared.patterns_ = program.Patterns();
  prepared.program_ = std::move(program);
  return prepared;
}

util::Result<ElogResult> EvaluateElog(const PreparedElogProgram& prepared,
                                      const Tree& t, int64_t max_derivations,
                                      const util::EvalControl* control) {
  return ElogEvaluator(prepared.program(), t, max_derivations,
                       /*validate=*/false, &prepared.patterns(), control)
      .Run();
}

}  // namespace mdatalog::elog
