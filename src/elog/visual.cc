#include "src/elog/visual.h"

#include <algorithm>

namespace mdatalog::elog {

std::vector<std::string> VisualSession::Patterns() const {
  std::vector<std::string> out = {"root"};
  std::vector<std::string> defined = program_.Patterns();
  out.insert(out.end(), defined.begin(), defined.end());
  return out;
}

util::Result<std::vector<tree::NodeId>> VisualSession::MatchesOf(
    const std::string& pattern) const {
  if (pattern == "root") {
    return std::vector<tree::NodeId>{example_.root()};
  }
  MD_ASSIGN_OR_RETURN(ElogResult result, EvaluateElog(program_, example_));
  return result.Of(pattern);
}

util::Result<ElogPath> VisualSession::InferPath(tree::NodeId ancestor,
                                                tree::NodeId node) const {
  if (!example_.IsAncestor(ancestor, node)) {
    return util::Status::InvalidArgument(
        "selected node is not inside the parent instance");
  }
  std::vector<std::string> reversed;
  for (tree::NodeId cur = node; cur != ancestor; cur = example_.parent(cur)) {
    reversed.push_back(example_.label_name(cur));
  }
  ElogPath path;
  path.steps.assign(reversed.rbegin(), reversed.rend());
  return path;
}

util::Result<int32_t> VisualSession::SelectNode(
    const std::string& new_pattern, const std::string& parent_pattern,
    tree::NodeId parent_instance, tree::NodeId target) {
  MD_ASSIGN_OR_RETURN(std::vector<tree::NodeId> instances,
                      MatchesOf(parent_pattern));
  if (!std::binary_search(instances.begin(), instances.end(),
                          parent_instance)) {
    return util::Status::InvalidArgument(
        "the chosen node is not an instance of the parent pattern");
  }
  MD_ASSIGN_OR_RETURN(ElogPath path, InferPath(parent_instance, target));
  ElogRule rule;
  rule.head_pattern = new_pattern;
  rule.head_var = "X";
  rule.parent_pattern = parent_pattern;
  rule.parent_var = "X0";
  rule.subelem = std::move(path);
  program_.AddRule(std::move(rule));
  return static_cast<int32_t>(program_.rules().size()) - 1;
}

util::Status VisualSession::GeneralizeStep(int32_t rule_index,
                                           int32_t step_index) {
  if (rule_index < 0 ||
      rule_index >= static_cast<int32_t>(program_.rules().size())) {
    return util::Status::InvalidArgument("rule index out of range");
  }
  ElogRule& rule = program_.mutable_rules()[rule_index];
  if (step_index < 0 ||
      step_index >= static_cast<int32_t>(rule.subelem.steps.size())) {
    return util::Status::InvalidArgument("step index out of range");
  }
  rule.subelem.steps[step_index] = "_";
  return util::Status::OK();
}

util::Status VisualSession::AddCondition(int32_t rule_index,
                                         ElogCondition condition) {
  if (rule_index < 0 ||
      rule_index >= static_cast<int32_t>(program_.rules().size())) {
    return util::Status::InvalidArgument("rule index out of range");
  }
  program_.mutable_rules()[rule_index].conditions.push_back(
      std::move(condition));
  return ValidateElog(program_);
}

}  // namespace mdatalog::elog
