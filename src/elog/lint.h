#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/minimize.h"
#include "src/elog/ast.h"
#include "src/util/result.h"

/// \file lint.h
/// Static QA for Elog⁻ wrappers: the analysis subsystem's minimizer
/// (analysis/minimize.h) run over the wrapper's monadic-datalog translation
/// (Theorem 6.5), with every finding mapped back to the *source* Elog rule.
/// The mapping is exact because ElogToDatalog emits one datalog rule per
/// Elog rule, in order — the minimizer's per-rule fates line up 1:1.
///
/// Findings are advisory: a wrapper with findings still runs and produces
/// the same extraction as its minimized form. Lint exists so wrapper
/// authors (and CI) see dead weight before it ships.

namespace mdatalog::elog {

struct LintFinding {
  enum class Kind : uint8_t {
    kUnsatBody,          ///< rule body unsatisfiable on any tree
    kUnderivableBody,    ///< body references a pattern with no usable rule
    kDeadRule,           ///< head pattern cannot reach an extraction pattern
    kDuplicateRule,      ///< identical to an earlier rule (modulo renaming)
    kSubsumedRule,       ///< an earlier rule θ-subsumes this one
    kRedundantLiterals,  ///< rule kept, but some conditions are redundant
    kUnusedPattern,      ///< pattern defined but never referenced or extracted
    kUndefinedPattern,   ///< extraction pattern with no defining rule
  };
  Kind kind;
  /// Index into program.rules(); -1 for the pattern-level kinds.
  int32_t rule_index = -1;
  /// Head pattern of the offending rule, or the offending pattern name.
  std::string pattern;
  std::string message;
};

/// Stable kebab-case kind name ("unsat-body", "dead-rule", ...).
const char* LintFindingKindName(LintFinding::Kind kind);

struct LintOptions {
  /// Flag patterns that are neither extracted nor referenced by any rule.
  bool check_unused_patterns = true;
  /// Passed through to analysis::Minimize (roots are overwritten from the
  /// extraction patterns).
  analysis::MinimizeOptions minimize;
};

struct LintReport {
  std::vector<LintFinding> findings;
  int32_t rules_analyzed = 0;
  /// True when the wrapper uses Elog⁻Δ builtins: the datalog-level analysis
  /// is skipped (Theorem 6.6 — no monadic-datalog translation exists) and
  /// only the syntactic pattern checks run.
  bool delta_builtins = false;

  bool clean() const { return findings.empty(); }
  /// One line per finding: "rule 3 (price): dead-rule: ...".
  std::string ToText() const;
};

/// Lints `program` with `extraction_patterns` as the observable output (the
/// wrapper's extraction functions; empty = every pattern is observable).
/// Fails with InvalidArgument when the program itself does not validate —
/// lint reports *useless* rules, not *broken* programs.
util::Result<LintReport> LintWrapper(
    const ElogProgram& program,
    const std::vector<std::string>& extraction_patterns,
    const LintOptions& options = {});

}  // namespace mdatalog::elog
