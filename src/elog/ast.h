#pragma once

#include <string>
#include <vector>

#include "src/util/result.h"

/// \file ast.h
/// The Elog⁻ wrapping language (Definition 6.2) and its Elog⁻Δ extension
/// (Theorem 6.6).
///
/// An Elog⁻ rule has the shape
///
///     p(x) ← p0(x0), subelemπ(x0, x), C, R.
///
/// where p is a *pattern* predicate, p0 the parent pattern (a pattern or
/// "root"), C condition atoms (leaf, firstsibling, nextsibling, lastsibling,
/// containsπ) and R pattern references. Rules with an ε subelem path are
/// *specialization rules* p(x) ← p0(x), C, R.
///
/// Elog⁻Δ adds the distance-tolerance and order builtins before%, notafter
/// and notbefore, which push the language strictly beyond MSO
/// (Theorem 6.6 — the aⁿbⁿ wrapper).

namespace mdatalog::elog {

/// A fixed path π ∈ (Σ ∪ {_})* from Definition 6.1; "_" is the wildcard.
struct ElogPath {
  std::vector<std::string> steps;

  bool empty() const { return steps.empty(); }
  /// Parses "table._.tr" (no quotes). "" parses to the ε path.
  static util::Result<ElogPath> Parse(const std::string& text);
  std::string ToString() const;
  bool operator==(const ElogPath&) const = default;
};

struct ElogCondition {
  enum class Kind {
    // Elog⁻ condition predicates (Definition 6.2):
    kLeaf,          ///< leaf(var1)
    kFirstSibling,  ///< firstsibling(var1)
    kLastSibling,   ///< lastsibling(var1)
    kNextSibling,   ///< nextsibling(var1, var2)
    kContains,      ///< contains_path(var1, var2); path must be non-ε
    kPatternRef,    ///< pattern(var1)
    // Elog⁻Δ builtins (Section 6.3):
    kBefore,        ///< before_{path,α%-β%}(var1, var2, var3)
    kNotAfter,      ///< notafter_path(var1, var2)
    kNotBefore,     ///< notbefore_path(var1, var2)
  };
  Kind kind;
  std::string var1, var2, var3;
  ElogPath path;
  std::string pattern;
  int32_t alpha_pct = 0;
  int32_t beta_pct = 100;
};

struct ElogRule {
  std::string head_pattern;
  std::string head_var;
  std::string parent_pattern;  ///< a pattern name or "root"
  std::string parent_var;
  /// ε ⇔ specialization rule (head_var must equal parent_var then).
  ElogPath subelem;
  std::vector<ElogCondition> conditions;

  bool is_specialization() const { return subelem.empty(); }
};

class ElogProgram {
 public:
  void AddRule(ElogRule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<ElogRule>& rules() const { return rules_; }
  std::vector<ElogRule>& mutable_rules() { return rules_; }

  /// Pattern predicates defined by the program (heads), in first-definition
  /// order.
  std::vector<std::string> Patterns() const;

  /// True if any rule uses an Elog⁻Δ builtin (before/notafter/notbefore).
  bool UsesDeltaBuiltins() const;

 private:
  std::vector<ElogRule> rules_;
};

/// Structural checks from Definition 6.2: head is not "root"; specialization
/// rules reuse the parent variable; contains paths are non-ε; the rule's
/// query graph is connected; condition variables chain back to the head or
/// parent variable.
util::Status ValidateElog(const ElogProgram& program);

std::string ToString(const ElogRule& rule);
std::string ToString(const ElogProgram& program);

/// Parses the textual syntax, e.g.
///
///   item(X)  <- root(R), subelem(R, "table.tr", X).
///   price(Y) <- item(X), subelem(X, "td", Y), lastsibling(Y).
///   cheap(X) <- item(X), leaf(X).                      % specialization
///   anbn(X)  <- root(X), contains(X, "a", Y), a0(Y),
///               before(X, "b", Y, Z, 50, 50), b0(Z).
util::Result<ElogProgram> ParseElog(std::string_view text);

}  // namespace mdatalog::elog
