#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/tree/tree.h"
#include "src/util/status.h"

/// \file stream_types.h
/// The result/options value types of the streaming front, split out so the
/// serving runtime can declare SubmitStream without pulling in the session
/// machinery (stream_session.h includes runtime.h, not the other way round).

namespace mdatalog::stream {

/// One extraction result, emitted as soon as it is both derived and final
/// (the matched node's subtree has closed) — typically long before end of
/// input.
///
/// `node` is the id in the session's internal tree, which keeps the batch
/// parser's synthetic "#document" root until end of input decides whether it
/// is stripped. The id in the final output tree is
/// `node - (session.stripped() ? 1 : 0)` — resolvable only after Finish.
/// `label` and `text` are already final when the result is emitted.
struct StreamResult {
  std::string pattern;  ///< extraction pattern that matched
  std::string label;    ///< (projected) label of the matched node
  std::string text;     ///< subtree text of the matched node, document order
  tree::NodeId node = tree::kNoNode;  ///< provisional (internal) node id
};

struct StreamOptions {
  /// Invoked on the Feed/Finish calling thread for every extraction result,
  /// in derivation order, exactly once per (pattern, node). May be null
  /// (results then only appear in Finish's XML).
  std::function<void(const StreamResult&)> on_result;
  /// Invoked exactly once when the session reaches a terminal state: the
  /// final status of Finish, or the first error that killed the session.
  /// Used by the runtime for stats accounting; sessions created directly may
  /// leave it null.
  std::function<void(const util::Status&)> on_finish;
};

}  // namespace mdatalog::stream
