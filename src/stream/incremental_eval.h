#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ast.h"
#include "src/util/deadline.h"
#include "src/util/result.h"

/// \file incremental_eval.h
/// Insertion-only semi-naive evaluation of TMNF programs over a growing tree
/// EDB — the engine behind the streaming front (stream_session.h).
///
/// The paper's Theorem 4.2 evaluates a monadic datalog program in one pass
/// over a *complete* tree. Streaming inverts the setup: the tree grows as
/// bytes arrive, and the session asserts an EDB fact only at the moment it
/// becomes *finally* true (a node's label at creation, leaf/lastchild when
/// the element closes, root at end of input). Under that discipline the EDB
/// is insert-only, datalog is monotone, and the worklist fixpoint maintained
/// here after every insertion equals the batch fixpoint over the finished
/// tree — early derivations are sound, the final state is complete.
///
/// TMNF (Definition 5.1) is what makes the delta dispatch trivial: every
/// rule is a copy p(x) ← p0(x), a one-step join p(x) ← p0(x0), B(x0,x) (or
/// B(x,x0)), or an intersection p(x) ← p0(x), p1(x). A new unary fact
/// triggers O(1) rule firings plus adjacency walks; a new binary fact
/// triggers one membership probe per rule over that relation.
///
/// nextsibling_tc (the reflexive-transitive sibling closure, Lemma 5.5) is
/// special-cased: its pair set is quadratic in sibling-group width, so rules
/// over it are evaluated as marked walks along the sibling chain instead of
/// materialized pairs — O(nodes) per rule over the whole stream.

namespace mdatalog::stream {

/// Incremental fixpoint state for one TMNF program over one growing domain.
/// Not thread-safe: one instance per StreamSession.
class IncrementalTmnfEval {
 public:
  /// Compiles `tmnf` for incremental evaluation. Returns nullptr when the
  /// program is outside the supported fragment (a rule not in one of the
  /// three TMNF shapes over pure variables, a constant, a non-unary head, or
  /// an intensional binary predicate) — the session then falls back to batch
  /// evaluation at Finish. Programs produced by the Theorem 5.2 normalizer
  /// (CompiledWrapperProgram::tmnf) always compile.
  static std::unique_ptr<IncrementalTmnfEval> Compile(
      const core::Program& tmnf);

  /// Grows the domain to include `node` (nodes must arrive in increasing id
  /// order) and wires it into its sibling chain (`prev_sibling` = -1 for a
  /// first child). Used by the nextsibling_tc walks.
  void AddNode(int32_t node, int32_t prev_sibling);

  /// Asserts an extensional unary fact pred(node). Idempotent.
  void AddUnaryFact(core::PredId pred, int32_t node);
  /// Asserts an extensional binary fact pred(a, b). The session only asserts
  /// each pair once; pairs of nextsibling_tc must not be asserted (walks
  /// read the sibling chain directly).
  void AddBinaryFact(core::PredId pred, int32_t a, int32_t b);

  /// Runs the worklist to fixpoint over everything asserted since the last
  /// call. `control` may be null; on kDeadlineExceeded / kCancelled the
  /// state is consistent but incomplete — call Propagate again to resume.
  util::Status Propagate(const util::EvalControl* control);

  /// Fires `hook(pred, node)` whenever one of `preds` gains a member
  /// (asserted or derived), including members gained before the hook was
  /// installed — replays are in (pred, node) insertion order.
  void SetDeriveHook(const std::vector<core::PredId>& preds,
                     std::function<void(core::PredId, int32_t)> hook);

  bool Contains(core::PredId pred, int32_t node) const;
  /// Members of `pred`, sorted ascending. pred may be any unary predicate.
  std::vector<int32_t> Members(core::PredId pred) const;

  int64_t num_facts() const { return num_facts_; }

  /// Approximate heap footprint of the evaluator's state (bitsets, binary
  /// adjacency, sibling chains, pending deltas, insertion log). O(#preds)
  /// per call, not O(domain): the binary adjacency — the only part whose
  /// exact walk would be linear in the domain — is tracked incrementally as
  /// nodes and facts arrive. Feeds the session's peak_edb_bytes gauge.
  int64_t ApproxBytes() const;

 private:
  enum class RuleKind : uint8_t {
    kCopy,     // p(x) ← p0(x)
    kAnd,      // p(x) ← p0(x), p1(x)
    kJoinFwd,  // p(x) ← p0(x0), B(x0, x)
    kJoinBwd,  // p(x) ← p0(x0), B(x, x0)
    kTcFwd,    // p(x) ← p0(x0), nextsibling_tc(x0, x)
    kTcBwd,    // p(x) ← p0(x0), nextsibling_tc(x, x0)
  };
  struct CompiledRule {
    RuleKind kind;
    core::PredId head;
    core::PredId p0;
    core::PredId p1 = -1;   // kAnd only
    int32_t rel = -1;       // kJoinFwd/kJoinBwd: index into rels_
    int32_t tc_mark = -1;   // kTcFwd/kTcBwd: index into tc_marks_
  };
  /// Adjacency of one binary EDB relation (grown with the domain).
  struct BinaryRel {
    std::vector<std::vector<int32_t>> fwd;
    std::vector<std::vector<int32_t>> bwd;
  };
  /// One membership bitset per unary predicate, grown with the domain.
  struct Bits {
    std::vector<uint64_t> words;
    bool Test(int32_t n) const {
      const size_t w = static_cast<size_t>(n) >> 6;
      return w < words.size() && (words[w] >> (n & 63)) & 1;
    }
    /// Returns true when the bit was newly set.
    bool Set(int32_t n) {
      const size_t w = static_cast<size_t>(n) >> 6;
      if (w >= words.size()) words.resize(w + 1, 0);
      const uint64_t mask = uint64_t{1} << (n & 63);
      if (words[w] & mask) return false;
      words[w] |= mask;
      return true;
    }
  };

  IncrementalTmnfEval() = default;

  /// Records pred(node) if new: sets the bit, fires the hook, enqueues the
  /// delta. Shared by EDB assertion and rule derivation.
  void Insert(core::PredId pred, int32_t node);

  int32_t num_preds_ = 0;
  std::vector<CompiledRule> rules_;
  std::vector<std::vector<int32_t>> rules_by_p0_;  // PredId → rule indexes
  std::vector<std::vector<int32_t>> rules_by_rel_; // rel index → rule indexes
  std::vector<core::PredId> rel_pred_;             // rel index → PredId
  std::vector<int32_t> pred_to_rel_;               // PredId → rel index or -1

  std::vector<Bits> unary_;        // per PredId
  std::vector<BinaryRel> rels_;
  std::vector<Bits> tc_marks_;     // per tc rule: chain positions covered
  std::vector<int32_t> next_sibling_, prev_sibling_;
  int32_t domain_ = 0;

  std::deque<std::pair<core::PredId, int32_t>> unary_delta_;
  std::deque<std::array<int32_t, 3>> binary_delta_;  // (rel, a, b)

  std::vector<bool> hooked_;
  std::function<void(core::PredId, int32_t)> hook_;
  /// All (pred, node) insertions in order, for hook replay.
  std::vector<std::pair<core::PredId, int32_t>> insertion_log_;
  int64_t num_facts_ = 0;
  int64_t binary_bytes_ = 0;  // adjacency-list bytes, kept by Add{Node,BinaryFact}
};

}  // namespace mdatalog::stream
