#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/html/tokenizer.h"
#include "src/runtime/runtime.h"
#include "src/stream/incremental_eval.h"
#include "src/stream/stream_types.h"
#include "src/telemetry/telemetry.h"
#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file stream_session.h
/// Streaming incremental extraction: one wrap request whose page arrives in
/// chunks. Feed() pushes bytes through the incremental tokenizer, grows the
/// document tree, asserts EDB facts the moment they become finally true, and
/// runs semi-naive delta rounds over the compiled TMNF program — extraction
/// results are emitted via StreamOptions::on_result as soon as they are both
/// derived and final, typically long before end of input. Finish() settles
/// the root, runs the last delta round and returns the output XML, byte-
/// identical to what batch WrapperRuntime::Wrap produces on the concatenated
/// bytes — for every input under every chunking (the invariant the
/// differential harness in tests/stream_test.cc pins).
///
/// Fact finality is the load-bearing idea: label and structure links are
/// asserted at node creation, leaf/lastsibling/lastchild when the element
/// closes. The EDB is therefore insert-only, datalog is monotone, and every
/// pre-EOF derivation is sound — see incremental_eval.h.
///
/// The one fact that is NOT known before end of input is the root: the batch
/// parser strips the synthetic "#document" node when it ends up with exactly
/// one top-level child, so `root` is node 1 (internal) for ordinary
/// single-rooted HTML and node 0 for multi-rooted fragments — and almost
/// every derivation chain starts at `root`. Waiting for EOF would kill
/// streaming. Instead the session runs the SAME insert-only evaluator under
/// BOTH hypotheses: one asserts root(1) and no node-0 fact at all (the
/// stripped world, where the asserted structure is the batch EDB shifted up
/// by one and constant-free rules carry derivations across the isomorphism),
/// the other asserts root(0), label_#document(0) and the node-0 links
/// incrementally (the kept world). A result emits before EOF only when it is
/// derived under BOTH hypotheses and its subtree is closed — sound whichever
/// way the input ends. The hypothesis resolves the moment a second top-level
/// node arrives (kept) or at Finish (stripped); the loser is discarded and
/// the winner's remaining closed derivations flush.
///
/// Programs outside the datalog pipeline (Elog⁻Δ builtins) degrade
/// gracefully: the session still parses incrementally but evaluates natively
/// at Finish (streaming() == false); results then all emit at Finish.

namespace mdatalog::stream {

class StreamSession {
 public:
  /// `program` is a compiled wrapper from the runtime's program cache;
  /// `project_attr` mirrors WrapperHandle::project_attr (Remark 2.2
  /// attribute projection, applied to labels as nodes are created).
  /// `request` carries the deadline / cancel token; both the tokenizer and
  /// the delta rounds poll it. `telemetry`, when non-null (the runtime
  /// passes its own bundle), traces the session ("stream" kind: one
  /// stream.feed span per chunk, stream.propagate per delta round batch,
  /// stream.finish) and books the session's peak gauges at termination; it
  /// must outlive the session. request.trace overrides the sampling policy
  /// exactly as in Wrap.
  StreamSession(std::shared_ptr<const runtime::CompiledWrapperProgram> program,
                std::string project_attr, StreamOptions options,
                runtime::RequestOptions request = {},
                telemetry::Telemetry* telemetry = nullptr);

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Releases the session's hold on a caller-owned trace
  /// (TraceContext::inflight_requests — the trace must outlive the session,
  /// asserted by the trace's destructor in debug builds).
  ~StreamSession();

  /// Consumes the next chunk of the page. Chunk boundaries are arbitrary —
  /// mid-tag, mid-attribute, mid-entity, one byte at a time — and never
  /// observable in the results. On error (deadline, cancellation) the
  /// session is dead: every later call returns the same status.
  util::Status Feed(std::string_view chunk);

  /// Ends the input, runs evaluation to fixpoint, emits any still-pending
  /// results and returns the output XML — byte-identical to batch Wrap on
  /// the full page. Calling Feed or Finish afterwards fails.
  util::Result<std::string> Finish();

  /// True when the program compiled for incremental evaluation (results can
  /// emit before Finish); false = parse-only streaming with batch evaluation
  /// at Finish.
  bool streaming() const { return incremental_; }
  /// Whether the synthetic "#document" root was stripped from the output
  /// tree (final ids = internal ids - 1). Meaningful once the second
  /// top-level node arrives (false from then on) or after Finish.
  bool stripped() const { return stripped_; }
  /// Bytes held back by the tokenizer waiting for a construct to complete
  /// (bounded by the longest tag/comment/script body, not the page).
  size_t buffered_bytes() const { return tokenizer_.buffered_bytes(); }

  /// Bounded-memory observability: the largest number of simultaneously
  /// open (subtree-incomplete) nodes the session has held. Open nodes are
  /// the part of the tree whose EDB facts are still pending — for
  /// well-formed input this tracks nesting depth, not page length.
  int64_t peak_live_nodes() const { return peak_live_nodes_; }
  /// Peak ApproxBytes across the session's incremental evaluators (both
  /// hypothesis worlds while both are live). 0 for non-incremental sessions.
  int64_t peak_edb_bytes() const { return peak_edb_bytes_; }

 private:
  /// Terminal-state bookkeeping: latches the first non-OK status and fires
  /// on_finish exactly once (also on successful Finish, with OK).
  util::Status Terminal(util::Status status);
  util::Status CheckLive();

  /// Feed/Finish bodies; the public wrappers install the trace scope and
  /// settle the session trace after every span has unwound (the trace must
  /// not be finished while a stack span still points into it).
  util::Status FeedImpl(std::string_view chunk);
  util::Result<std::string> FinishImpl();
  /// After Terminal fired: books the peak gauges and finishes (owned) or
  /// closes (caller-owned) the session trace. Idempotent.
  void SettleSessionTrace();
  /// The session's trace: the caller-owned one from RequestOptions::trace,
  /// or the sampled one the session started. May be null.
  telemetry::TraceContext* cur_trace() const {
    return external_trace_ != nullptr ? external_trace_ : trace_.get();
  }
  void UpdateEdbPeak();

  void ProcessTokens(const std::vector<html::Token>& tokens);
  /// `label` is already projected (Remark 2.2); attributes are not retained.
  tree::NodeId CreateNode(const std::string& label);
  void CloseNode(tree::NodeId n);
  /// Second top-level node arrived: the root is definitely kept. Drops the
  /// stripped-hypothesis evaluator and flushes everything the kept world has
  /// already derived on closed subtrees.
  void ResolveKept();
  /// Emits (pattern pred, node) if it is derivation-eligible under the
  /// current hypothesis state, its subtree is closed, and it has not emitted
  /// yet.
  void MaybeEmit(core::PredId pred, tree::NodeId node);
  /// Re-examines every recorded derivation — called when the hypothesis
  /// resolves and the emission criterion relaxes.
  void FlushEligible();
  void EmitResult(int32_t pattern_index, tree::NodeId node);
  util::Status PropagateAll();

  const util::EvalControl* control() const {
    return control_.unbounded() ? nullptr : &control_;
  }
  static void AssertUnary(IncrementalTmnfEval* ev, core::PredId pred,
                          tree::NodeId n) {
    if (pred >= 0) ev->AddUnaryFact(pred, n);
  }
  static void AssertBinary(IncrementalTmnfEval* ev, core::PredId pred,
                           tree::NodeId a, tree::NodeId b) {
    if (pred >= 0) ev->AddBinaryFact(pred, a, b);
  }
  void AssertLabel(IncrementalTmnfEval* ev, const std::string& label,
                   tree::NodeId n);
  void AssertChildK(IncrementalTmnfEval* ev, int32_t k, tree::NodeId parent,
                    tree::NodeId child);

  const std::shared_ptr<const runtime::CompiledWrapperProgram> program_;
  const std::string project_attr_;
  const StreamOptions options_;
  const runtime::RequestOptions request_;  // keeps the cancel token alive
  const util::EvalControl control_;

  html::StreamTokenizer tokenizer_;
  tree::TreeBuilder builder_;
  /// Open nodes, innermost last: (node, tag name). Mirrors the batch
  /// parser's stack exactly (auto-close, unmatched end tags, void elements).
  std::vector<std::pair<tree::NodeId, std::string>> stack_;
  std::vector<int32_t> num_children_;  // per node, grows with the tree
  std::vector<bool> closed_;           // per node: subtree complete

  /// The two hypothesis worlds, both engaged when the program's TMNF
  /// compiled for incremental evaluation; the loser is reset at resolution.
  std::unique_ptr<IncrementalTmnfEval> eval_stripped_;
  std::unique_ptr<IncrementalTmnfEval> eval_kept_;
  bool incremental_ = false;
  // EDB predicate ids in program_->tmnf (-1 = the program never reads it).
  core::PredId root_pred_ = -1, leaf_pred_ = -1;
  core::PredId lastsibling_pred_ = -1, firstsibling_pred_ = -1;
  core::PredId firstchild_pred_ = -1, nextsibling_pred_ = -1;
  core::PredId child_pred_ = -1, lastchild_pred_ = -1;
  std::unordered_map<std::string, core::PredId> label_preds_;
  std::unordered_map<int32_t, core::PredId> childk_preds_;
  /// pattern pred → indices into prepared.extraction_patterns.
  std::unordered_map<core::PredId, std::vector<int32_t>> pred_patterns_;
  std::vector<core::PredId> pattern_pred_list_;
  /// Per (pattern pred, node): bit 0 = derived in the stripped world, bit 1
  /// = derived in the kept world, bit 2 = already emitted.
  std::unordered_map<uint64_t, uint8_t> derived_;

  bool settled_ = false;   // true once a second top-level node exists (kept)
  bool stripped_ = false;  // decided at Finish when still unsettled
  bool finished_ = false;
  bool terminal_ = false;  // on_finish fired
  util::Status status_;    // first error, latched

  telemetry::Telemetry* const telemetry_;            // may be null
  telemetry::TraceContext* const external_trace_;    // caller-owned, may be null
  std::unique_ptr<telemetry::TraceContext> trace_;   // owned, may be null
  int64_t bytes_fed_ = 0;
  int64_t live_nodes_ = 0;
  int64_t peak_live_nodes_ = 0;
  int64_t peak_edb_bytes_ = 0;
};

}  // namespace mdatalog::stream
