#include "src/stream/stream_session.h"

#include <algorithm>

#include "src/core/database.h"
#include "src/elog/eval.h"
#include "src/html/parser.h"
#include "src/tree/serialize.h"
#include "src/util/check.h"
#include "src/wrapper/wrapper.h"

namespace mdatalog::stream {

namespace {

/// Document-order subtree text over a partially-built tree; must concatenate
/// exactly like Tree::SubtreeText (preorder) so emitted texts match what the
/// finished tree reports. Iterative: fuzzed inputs nest arbitrarily deep.
std::string SubtreeTextOf(const tree::TreeBuilder& b, tree::NodeId n) {
  std::string out;
  std::vector<tree::NodeId> stack = {n};
  while (!stack.empty()) {
    const tree::NodeId m = stack.back();
    stack.pop_back();
    out += b.text(m);
    // Preorder via a LIFO stack: children push right-to-left.
    std::vector<tree::NodeId> children;
    for (tree::NodeId c = b.first_child(m); c != tree::kNoNode;
         c = b.next_sibling(c)) {
      children.push_back(c);
    }
    stack.insert(stack.end(), children.rbegin(), children.rend());
  }
  return out;
}

/// The label a node gets under attribute projection (Remark 2.2): the first
/// occurrence of `attr` wins, and only a non-empty value projects — exactly
/// ProjectAttributeIntoLabels' behavior, applied at creation time instead of
/// in a post-parse tree copy.
std::string ProjectedLabel(const std::string& tag,
                           const std::vector<html::Attribute>& attrs,
                           const std::string& attr) {
  if (attr.empty()) return tag;
  for (const html::Attribute& a : attrs) {
    if (a.name == attr) {
      if (a.value.empty()) return tag;
      return tag + "@" + a.value;
    }
  }
  return tag;
}

core::PredId EdbPred(const core::PredicateTable& preds,
                     const std::vector<bool>& intensional,
                     std::string_view name, int32_t arity) {
  const core::PredId p = preds.Find(name);
  if (p < 0 || preds.Arity(p) != arity || intensional[p]) return -1;
  return p;
}

uint64_t DerivedKey(core::PredId pred, tree::NodeId node) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(pred)) << 32) |
         static_cast<uint32_t>(node);
}

constexpr uint8_t kInStripped = 1;
constexpr uint8_t kInKept = 2;
constexpr uint8_t kEmitted = 4;

}  // namespace

StreamSession::StreamSession(
    std::shared_ptr<const runtime::CompiledWrapperProgram> program,
    std::string project_attr, StreamOptions options,
    runtime::RequestOptions request, telemetry::Telemetry* telemetry)
    : program_(std::move(program)),
      project_attr_(std::move(project_attr)),
      options_(std::move(options)),
      request_(std::move(request)),
      control_(request_.deadline, request_.cancel.get()),
      telemetry_(telemetry),
      external_trace_(request_.trace) {
  MD_CHECK(program_ != nullptr);
  if (external_trace_ != nullptr) {
    // The session records into the caller's trace for its whole lifetime;
    // hold it inflight so destroying the trace first trips the debug assert
    // instead of a use-after-free.
    external_trace_->AddInflightRequest();
  } else if (telemetry_ != nullptr) {
    trace_ = telemetry_->StartTrace("stream");
  }
  if (program_->has_ground_plan) {
    eval_stripped_ = IncrementalTmnfEval::Compile(program_->tmnf);
  }
  incremental_ = eval_stripped_ != nullptr;
  if (incremental_) {
    eval_kept_ = IncrementalTmnfEval::Compile(program_->tmnf);
    MD_CHECK(eval_kept_ != nullptr);  // same program, same outcome

    const core::PredicateTable& preds = program_->tmnf.preds();
    const std::vector<bool> intensional = program_->tmnf.IntensionalMask();
    root_pred_ = EdbPred(preds, intensional, "root", 1);
    leaf_pred_ = EdbPred(preds, intensional, "leaf", 1);
    lastsibling_pred_ = EdbPred(preds, intensional, "lastsibling", 1);
    firstsibling_pred_ = EdbPred(preds, intensional, "firstsibling", 1);
    firstchild_pred_ = EdbPred(preds, intensional, "firstchild", 2);
    nextsibling_pred_ = EdbPred(preds, intensional, "nextsibling", 2);
    child_pred_ = EdbPred(preds, intensional, "child", 2);
    lastchild_pred_ = EdbPred(preds, intensional, "lastchild", 2);
    for (core::PredId p = 0; p < preds.size(); ++p) {
      if (intensional[p]) continue;
      const std::string& name = preds.Name(p);
      if (preds.Arity(p) == 1) {
        const std::string label = core::LabelFromPredName(name);
        if (!label.empty()) label_preds_.emplace(label, p);
      } else if (preds.Arity(p) == 2) {
        const int32_t k = core::ChildKIndex(name);
        if (k >= 1) childk_preds_.emplace(k, p);
      }
    }
    const auto& patterns = program_->prepared.extraction_patterns;
    for (size_t i = 0; i < patterns.size(); ++i) {
      const core::PredId p = program_->pattern_preds[i];
      if (p < 0) continue;
      if (pred_patterns_.find(p) == pred_patterns_.end()) {
        pattern_pred_list_.push_back(p);
      }
      pred_patterns_[p].push_back(static_cast<int32_t>(i));
    }
    eval_stripped_->SetDeriveHook(pattern_pred_list_,
                                  [this](core::PredId pred, int32_t node) {
                                    derived_[DerivedKey(pred, node)] |=
                                        kInStripped;
                                    MaybeEmit(pred, node);
                                  });
    eval_kept_->SetDeriveHook(pattern_pred_list_,
                              [this](core::PredId pred, int32_t node) {
                                derived_[DerivedKey(pred, node)] |= kInKept;
                                MaybeEmit(pred, node);
                              });
  }
  // The synthetic root, exactly as the batch parser starts: whether it
  // survives into the output tree is settled at end of input. Until then the
  // two evaluators disagree about it by design: the kept world knows
  // everything about node 0 up front, the stripped world never hears of it
  // (node 0 enters its domain factless and linkless, so no derivation can
  // ever touch it).
  const tree::NodeId root = builder_.Root("#document");
  stack_.emplace_back(root, "#document");
  num_children_.push_back(0);
  closed_.push_back(false);
  if (incremental_) {
    eval_stripped_->AddNode(root, -1);
    eval_kept_->AddNode(root, -1);
    AssertUnary(eval_kept_.get(), root_pred_, 0);
    AssertLabel(eval_kept_.get(), "#document", 0);
  }
}

StreamSession::~StreamSession() {
  if (external_trace_ != nullptr) {
    external_trace_->ReleaseInflightRequest();
  }
}

util::Status StreamSession::Terminal(util::Status status) {
  if (!status.ok() && status_.ok()) status_ = status;
  if (!terminal_) {
    terminal_ = true;
    if (options_.on_finish) options_.on_finish(status);
  }
  return status;
}

util::Status StreamSession::CheckLive() {
  if (!status_.ok()) return status_;
  if (finished_) {
    return util::Status::FailedPrecondition(
        "stream session already finished");
  }
  if (!control_.unbounded()) {
    util::Status s = control_.Check();
    if (!s.ok()) return Terminal(std::move(s));
  }
  return util::Status::OK();
}

util::Status StreamSession::PropagateAll() {
  telemetry::TraceSpan span(cur_trace(), "stream.propagate");
  int64_t facts_before = 0;
  if (span) {
    for (IncrementalTmnfEval* ev : {eval_stripped_.get(), eval_kept_.get()}) {
      if (ev != nullptr) facts_before += ev->num_facts();
    }
  }
  for (IncrementalTmnfEval* ev : {eval_stripped_.get(), eval_kept_.get()}) {
    if (ev != nullptr) MD_RETURN_NOT_OK(ev->Propagate(control()));
  }
  if (span) {
    int64_t facts_after = 0;
    for (IncrementalTmnfEval* ev : {eval_stripped_.get(), eval_kept_.get()}) {
      if (ev != nullptr) facts_after += ev->num_facts();
    }
    span.Value("delta", facts_after - facts_before);
  }
  return util::Status::OK();
}

void StreamSession::UpdateEdbPeak() {
  int64_t bytes = 0;
  for (IncrementalTmnfEval* ev : {eval_stripped_.get(), eval_kept_.get()}) {
    if (ev != nullptr) bytes += ev->ApproxBytes();
  }
  peak_edb_bytes_ = std::max(peak_edb_bytes_, bytes);
}

void StreamSession::SettleSessionTrace() {
  if (!terminal_) return;
  if (telemetry_ != nullptr) {
    // The peaks survive the session as registry gauges (process-wide highs)
    // even when this particular request was not traced.
    telemetry_->registry().GetGauge("stream.peak_live_nodes")
        ->SetMax(peak_live_nodes_);
    telemetry_->registry().GetGauge("stream.peak_edb_bytes")
        ->SetMax(peak_edb_bytes_);
  }
  telemetry::TraceContext* trace = cur_trace();
  if (trace == nullptr) return;
  trace->set_page_bytes(bytes_fed_);
  trace->set_nodes(builder_.size());
  const util::StatusCode code =
      status_.ok() ? util::StatusCode::kOk : status_.code();
  if (trace_ != nullptr && telemetry_ != nullptr) {
    telemetry_->FinishTrace(std::move(trace_), code);
  } else {
    // Caller-owned (or orphaned) trace: close it, the caller keeps it.
    trace->set_status(code);
    trace->Close();
    trace_.reset();
  }
}

util::Status StreamSession::Feed(std::string_view chunk) {
  const telemetry::TraceScope scope(cur_trace());
  util::Status s = FeedImpl(chunk);
  // Settled only after every span above has unwound: finishing the trace
  // moves its span log, and a live TraceSpan still points into it.
  SettleSessionTrace();
  return s;
}

util::Status StreamSession::FeedImpl(std::string_view chunk) {
  MD_RETURN_NOT_OK(CheckLive());
  bytes_fed_ += static_cast<int64_t>(chunk.size());
  telemetry::TraceSpan span(cur_trace(), "stream.feed");
  span.Value("bytes", static_cast<int64_t>(chunk.size()));
  std::vector<html::Token> tokens;
  util::Status s = tokenizer_.Feed(chunk, &tokens, control());
  if (!s.ok()) return Terminal(std::move(s));
  const int32_t nodes_before = builder_.size();
  ProcessTokens(tokens);
  span.Value("nodes", builder_.size() - nodes_before);
  s = PropagateAll();
  if (!s.ok()) return Terminal(std::move(s));
  UpdateEdbPeak();
  return util::Status::OK();
}

void StreamSession::ProcessTokens(const std::vector<html::Token>& tokens) {
  // Token-for-token the batch parser's tree construction (html/parser.cc):
  // any divergence here would break the byte-identical-to-batch invariant.
  for (const html::Token& token : tokens) {
    switch (token.type) {
      case html::Token::Type::kDoctype:
      case html::Token::Type::kComment:
        break;  // not represented in the document tree
      case html::Token::Type::kText: {
        const tree::NodeId n = CreateNode("#text");
        builder_.SetText(n, token.data);
        CloseNode(n);
        break;
      }
      case html::Token::Type::kStartTag: {
        const std::vector<std::string>& closes = html::AutoCloses(token.data);
        while (stack_.size() > 1 &&
               std::find(closes.begin(), closes.end(),
                         stack_.back().second) != closes.end()) {
          CloseNode(stack_.back().first);
          stack_.pop_back();
        }
        const tree::NodeId n = CreateNode(
            ProjectedLabel(token.data, token.attrs, project_attr_));
        if (!html::IsVoidElement(token.data) && !token.self_closing) {
          stack_.emplace_back(n, token.data);
        } else {
          CloseNode(n);
        }
        break;
      }
      case html::Token::Type::kEndTag: {
        int32_t match = -1;
        for (int32_t i = static_cast<int32_t>(stack_.size()) - 1; i >= 1;
             --i) {
          if (stack_[i].second == token.data) {
            match = i;
            break;
          }
        }
        if (match >= 1) {
          while (static_cast<int32_t>(stack_.size()) > match) {
            CloseNode(stack_.back().first);
            stack_.pop_back();
          }
        }
        break;
      }
    }
  }
}

tree::NodeId StreamSession::CreateNode(const std::string& label) {
  const tree::NodeId parent = stack_.back().first;
  const tree::NodeId n = builder_.Child(parent, label);
  num_children_.push_back(0);
  closed_.push_back(false);
  peak_live_nodes_ = std::max(peak_live_nodes_, ++live_nodes_);
  const int32_t k = ++num_children_[parent];
  const tree::NodeId prev = builder_.prev_sibling(n);
  if (!incremental_) return n;

  // A second top-level node refutes the stripped hypothesis before any fact
  // about this node is asserted.
  if (parent == 0 && k == 2 && !settled_) ResolveKept();

  if (eval_stripped_ != nullptr) {
    eval_stripped_->AddNode(n, prev);
    AssertLabel(eval_stripped_.get(), label, n);
    if (parent == 0) {
      // The first top-level node IS the root of the stripped tree (internal
      // ids run one above the batch EDB's). No sibling/parent facts: the
      // external root has none in TreeDatabase::Materialize.
      AssertUnary(eval_stripped_.get(), root_pred_, n);
    } else {
      if (prev == tree::kNoNode) {
        AssertBinary(eval_stripped_.get(), firstchild_pred_, parent, n);
        AssertUnary(eval_stripped_.get(), firstsibling_pred_, n);
      } else {
        AssertBinary(eval_stripped_.get(), nextsibling_pred_, prev, n);
      }
      AssertBinary(eval_stripped_.get(), child_pred_, parent, n);
      AssertChildK(eval_stripped_.get(), k, parent, n);
    }
  }
  if (eval_kept_ != nullptr) {
    // In the kept world node 0 is an ordinary node: top-level children link
    // to it exactly like any other parent.
    eval_kept_->AddNode(n, prev);
    AssertLabel(eval_kept_.get(), label, n);
    if (prev == tree::kNoNode) {
      AssertBinary(eval_kept_.get(), firstchild_pred_, parent, n);
      AssertUnary(eval_kept_.get(), firstsibling_pred_, n);
    } else {
      AssertBinary(eval_kept_.get(), nextsibling_pred_, prev, n);
    }
    AssertBinary(eval_kept_.get(), child_pred_, parent, n);
    AssertChildK(eval_kept_.get(), k, parent, n);
  }
  return n;
}

void StreamSession::CloseNode(tree::NodeId n) {
  closed_[n] = true;
  --live_nodes_;
  if (!incremental_) return;
  const tree::NodeId lc = builder_.last_child(n);
  for (IncrementalTmnfEval* ev : {eval_stripped_.get(), eval_kept_.get()}) {
    if (ev == nullptr) continue;
    if (lc == tree::kNoNode) {
      AssertUnary(ev, leaf_pred_, n);
    } else {
      AssertUnary(ev, lastsibling_pred_, lc);
      AssertBinary(ev, lastchild_pred_, n, lc);
    }
  }
  // Anything already derived for this node was held back by the closed_
  // check; it is eligible now.
  for (const core::PredId pred : pattern_pred_list_) MaybeEmit(pred, n);
}

void StreamSession::ResolveKept() {
  settled_ = true;
  eval_stripped_.reset();
  // The emission criterion just relaxed from derived-in-both to
  // derived-in-kept: flush what the kept world had and the stripped world
  // was still missing.
  FlushEligible();
}

void StreamSession::MaybeEmit(core::PredId pred, tree::NodeId node) {
  const auto it = derived_.find(DerivedKey(pred, node));
  if (it == derived_.end()) return;
  uint8_t& bits = it->second;
  if (bits & kEmitted) return;
  if (!closed_[node]) return;
  // Pre-resolution, a result must hold under both hypotheses to be sound;
  // afterwards the winner alone decides.
  const uint8_t need = settled_    ? kInKept
                       : stripped_ ? kInStripped
                                   : (kInStripped | kInKept);
  if ((bits & need) != need) return;
  bits |= kEmitted;
  for (const int32_t idx : pred_patterns_[pred]) EmitResult(idx, node);
}

void StreamSession::FlushEligible() {
  std::vector<uint64_t> keys;
  keys.reserve(derived_.size());
  for (const auto& [key, bits] : derived_) {
    if (!(bits & kEmitted)) keys.push_back(key);
  }
  // Deterministic emission order regardless of hash-map iteration: by node,
  // then pattern pred.
  std::sort(keys.begin(), keys.end(), [](uint64_t a, uint64_t b) {
    const uint32_t na = static_cast<uint32_t>(a), nb = static_cast<uint32_t>(b);
    return na != nb ? na < nb : a < b;
  });
  for (const uint64_t key : keys) {
    MaybeEmit(static_cast<core::PredId>(key >> 32),
              static_cast<tree::NodeId>(static_cast<uint32_t>(key)));
  }
}

void StreamSession::AssertLabel(IncrementalTmnfEval* ev,
                                const std::string& label, tree::NodeId n) {
  const auto it = label_preds_.find(label);
  if (it != label_preds_.end()) ev->AddUnaryFact(it->second, n);
}

void StreamSession::AssertChildK(IncrementalTmnfEval* ev, int32_t k,
                                 tree::NodeId parent, tree::NodeId child) {
  const auto it = childk_preds_.find(k);
  if (it != childk_preds_.end()) {
    ev->AddBinaryFact(it->second, parent, child);
  }
}

void StreamSession::EmitResult(int32_t pattern_index, tree::NodeId node) {
  if (!options_.on_result) return;
  StreamResult result;
  result.pattern = program_->prepared.extraction_patterns[pattern_index];
  result.label = builder_.label_name(node);
  result.text = SubtreeTextOf(builder_, node);
  result.node = node;
  options_.on_result(result);
}

util::Result<std::string> StreamSession::Finish() {
  const telemetry::TraceScope scope(cur_trace());
  util::Result<std::string> result = FinishImpl();
  SettleSessionTrace();
  return result;
}

util::Result<std::string> StreamSession::FinishImpl() {
  MD_RETURN_NOT_OK(CheckLive());
  finished_ = true;
  telemetry::TraceSpan finish_span(cur_trace(), "stream.finish");

  std::vector<html::Token> tokens;
  util::Status s = tokenizer_.Finish(&tokens, control());
  if (!s.ok()) return Terminal(std::move(s));
  ProcessTokens(tokens);
  // End of input closes everything still open (batch: remaining stack).
  while (stack_.size() > 1) {
    CloseNode(stack_.back().first);
    stack_.pop_back();
  }
  if (builder_.size() == 1) {
    return Terminal(util::Status::InvalidArgument("no content in HTML input"));
  }

  IncrementalTmnfEval* winner = nullptr;
  if (incremental_) {
    if (!settled_) {
      // Exactly one top-level node: the stripped hypothesis held. Its
      // evaluator has been complete since the last fact (root(1) was
      // asserted when node 1 was created).
      stripped_ = true;
      eval_kept_.reset();
      winner = eval_stripped_.get();
    } else {
      winner = eval_kept_.get();
      const tree::NodeId lc = builder_.last_child(0);
      AssertUnary(winner, lastsibling_pred_, lc);
      AssertBinary(winner, lastchild_pred_, 0, lc);
    }
    closed_[0] = true;  // patterns may select the kept "#document" root
    {
      telemetry::TraceSpan span(cur_trace(), "stream.propagate");
      s = winner->Propagate(control());
      if (span) span.Value("facts", winner->num_facts());
    }
    UpdateEdbPeak();
    if (!s.ok()) return Terminal(std::move(s));
    // The hypothesis resolution relaxed the emission criterion; everything
    // the winner derived on closed subtrees (i.e. everything) must be out
    // before Finish returns.
    FlushEligible();
  } else {
    stripped_ = builder_.first_child(0) != tree::kNoNode &&
                builder_.next_sibling(builder_.first_child(0)) ==
                    tree::kNoNode;
  }

  tree::Tree full = builder_.Build();
  tree::Tree out_tree = stripped_
                            ? tree::CopySubtree(full, full.first_child(0))
                            : std::move(full);

  elog::ElogResult matches;
  const auto& patterns = program_->prepared.extraction_patterns;
  if (incremental_) {
    const int32_t shift = stripped_ ? 1 : 0;
    for (size_t i = 0; i < patterns.size(); ++i) {
      const core::PredId pred = program_->pattern_preds[i];
      if (pred < 0) continue;  // never derivable: empty extent
      std::vector<tree::NodeId> extent = winner->Members(pred);
      for (tree::NodeId& node : extent) node -= shift;
      matches.matches[patterns[i]] = std::move(extent);
    }
  } else {
    // Fallback (Elog⁻Δ etc.): the page streamed, the evaluation is batch.
    util::Result<elog::ElogResult> result = elog::EvaluateElog(
        program_->prepared.program, out_tree, elog::kDefaultMaxDerivations,
        control());
    if (!result.ok()) return Terminal(result.status());
    matches = *std::move(result);
    if (options_.on_result) {
      const int32_t shift = stripped_ ? 1 : 0;
      for (const std::string& pattern : patterns) {
        const auto it = matches.matches.find(pattern);
        if (it == matches.matches.end()) continue;
        for (const tree::NodeId node : it->second) {
          StreamResult r;
          r.pattern = pattern;
          r.label = out_tree.label_name(node);
          r.text = out_tree.SubtreeText(node);
          r.node = node + shift;  // same internal-id convention as streaming
          options_.on_result(r);
        }
      }
    }
  }

  std::string xml =
      tree::ToXml(wrapper::BuildOutputTree(patterns, matches, out_tree));
  Terminal(util::Status::OK());
  return xml;
}

}  // namespace mdatalog::stream
