#include "src/stream/incremental_eval.h"

#include <algorithm>

#include "src/util/check.h"

namespace mdatalog::stream {

namespace {

bool AllVars(const core::Atom& atom) {
  for (const core::Term& t : atom.args) {
    if (!t.is_var()) return false;
  }
  return true;
}

}  // namespace

std::unique_ptr<IncrementalTmnfEval> IncrementalTmnfEval::Compile(
    const core::Program& tmnf) {
  std::unique_ptr<IncrementalTmnfEval> eval(new IncrementalTmnfEval());
  const core::PredicateTable& preds = tmnf.preds();
  eval->num_preds_ = preds.size();
  eval->unary_.resize(eval->num_preds_);
  eval->rules_by_p0_.resize(eval->num_preds_);
  eval->pred_to_rel_.assign(eval->num_preds_, -1);
  eval->hooked_.assign(eval->num_preds_, false);

  const std::vector<bool> intensional = tmnf.IntensionalMask();
  const core::PredId tc_pred = preds.Find("nextsibling_tc");

  auto rel_index = [&](core::PredId b) {
    if (eval->pred_to_rel_[b] < 0) {
      eval->pred_to_rel_[b] = static_cast<int32_t>(eval->rels_.size());
      eval->rels_.emplace_back();
      eval->rules_by_rel_.emplace_back();
      eval->rel_pred_.push_back(b);
    }
    return eval->pred_to_rel_[b];
  };

  for (const core::Rule& rule : tmnf.rules()) {
    // Every supported rule has a unary, variable head.
    if (rule.head.args.size() != 1 || !AllVars(rule.head)) return nullptr;
    const core::PredId head = rule.head.pred;
    const core::VarId hv = rule.head.args[0].value;
    for (const core::Atom& b : rule.body) {
      if (!AllVars(b)) return nullptr;  // constants: outside the fragment
    }

    CompiledRule cr;
    cr.head = head;
    if (rule.body.size() == 1) {
      // Form (1): p(x) ← p0(x).
      const core::Atom& b = rule.body[0];
      if (b.args.size() != 1 || b.args[0].value != hv) return nullptr;
      cr.kind = RuleKind::kCopy;
      cr.p0 = b.pred;
    } else if (rule.body.size() == 2 && rule.body[0].args.size() == 1 &&
               rule.body[1].args.size() == 1) {
      // Form (3): p(x) ← p0(x), p1(x).
      if (rule.body[0].args[0].value != hv ||
          rule.body[1].args[0].value != hv) {
        return nullptr;
      }
      cr.kind = RuleKind::kAnd;
      cr.p0 = rule.body[0].pred;
      cr.p1 = rule.body[1].pred;
    } else if (rule.body.size() == 2) {
      // Form (2): p(x) ← p0(x0), B(…) with B binary and extensional.
      const core::Atom& first = rule.body[0];
      const core::Atom& second = rule.body[1];
      const core::Atom& un = first.args.size() == 1 ? first : second;
      const core::Atom& bin = first.args.size() == 2 ? first : second;
      if (un.args.size() != 1 || bin.args.size() != 2) return nullptr;
      if (intensional[bin.pred]) return nullptr;
      const core::VarId uv = un.args[0].value;
      if (uv == hv) return nullptr;  // diagonal B(x,x): not a TMNF shape
      cr.p0 = un.pred;
      if (bin.args[0].value == uv && bin.args[1].value == hv) {
        cr.kind = bin.pred == tc_pred ? RuleKind::kTcFwd : RuleKind::kJoinFwd;
      } else if (bin.args[0].value == hv && bin.args[1].value == uv) {
        cr.kind = bin.pred == tc_pred ? RuleKind::kTcBwd : RuleKind::kJoinBwd;
      } else {
        return nullptr;
      }
      if (cr.kind == RuleKind::kTcFwd || cr.kind == RuleKind::kTcBwd) {
        cr.tc_mark = static_cast<int32_t>(eval->tc_marks_.size());
        eval->tc_marks_.emplace_back();
      } else {
        cr.rel = rel_index(bin.pred);
      }
    } else {
      return nullptr;
    }
    if (preds.Arity(cr.p0) != 1) return nullptr;
    if (cr.p1 >= 0 && preds.Arity(cr.p1) != 1) return nullptr;

    const int32_t id = static_cast<int32_t>(eval->rules_.size());
    eval->rules_by_p0_[cr.p0].push_back(id);
    // kAnd fires from either conjunct's delta; index it under both.
    if (cr.kind == RuleKind::kAnd && cr.p1 != cr.p0) {
      eval->rules_by_p0_[cr.p1].push_back(id);
    }
    if (cr.rel >= 0) eval->rules_by_rel_[cr.rel].push_back(id);
    eval->rules_.push_back(cr);
  }
  return eval;
}

void IncrementalTmnfEval::AddNode(int32_t node, int32_t prev_sibling) {
  MD_CHECK(node == domain_);
  domain_ = node + 1;
  next_sibling_.push_back(-1);
  prev_sibling_.push_back(prev_sibling);
  if (prev_sibling >= 0) next_sibling_[prev_sibling] = node;
  for (auto& rel : rels_) {
    rel.fwd.emplace_back();
    rel.bwd.emplace_back();
  }
  binary_bytes_ +=
      static_cast<int64_t>(rels_.size()) * 2 * sizeof(std::vector<int32_t>);
  if (prev_sibling < 0) return;
  // A kTcFwd rule whose mark reached prev_sibling covers every later sibling
  // too: extend the mark (and the head) onto the new chain tail.
  for (const CompiledRule& rule : rules_) {
    if (rule.kind != RuleKind::kTcFwd) continue;
    if (tc_marks_[rule.tc_mark].Test(prev_sibling) &&
        tc_marks_[rule.tc_mark].Set(node)) {
      Insert(rule.head, node);
    }
  }
}

void IncrementalTmnfEval::AddUnaryFact(core::PredId pred, int32_t node) {
  MD_CHECK(pred >= 0 && pred < num_preds_ && node >= 0 && node < domain_);
  Insert(pred, node);
}

void IncrementalTmnfEval::AddBinaryFact(core::PredId pred, int32_t a,
                                        int32_t b) {
  MD_CHECK(a >= 0 && a < domain_ && b >= 0 && b < domain_);
  MD_CHECK(pred >= 0 && pred < num_preds_);
  const int32_t rel = pred_to_rel_[pred];
  if (rel < 0) return;  // no rule reads this relation
  rels_[rel].fwd[a].push_back(b);
  rels_[rel].bwd[b].push_back(a);
  binary_bytes_ += 2 * sizeof(int32_t);
  binary_delta_.push_back({rel, a, b});
}

int64_t IncrementalTmnfEval::ApproxBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(*this)) + binary_bytes_;
  for (const Bits& b : unary_) {
    bytes += static_cast<int64_t>(b.words.capacity()) * sizeof(uint64_t);
  }
  for (const Bits& b : tc_marks_) {
    bytes += static_cast<int64_t>(b.words.capacity()) * sizeof(uint64_t);
  }
  bytes += static_cast<int64_t>(next_sibling_.capacity() +
                                prev_sibling_.capacity()) *
           sizeof(int32_t);
  bytes += static_cast<int64_t>(unary_delta_.size()) *
           sizeof(std::pair<core::PredId, int32_t>);
  bytes += static_cast<int64_t>(binary_delta_.size()) *
           sizeof(std::array<int32_t, 3>);
  bytes += static_cast<int64_t>(insertion_log_.capacity()) *
           sizeof(std::pair<core::PredId, int32_t>);
  return bytes;
}

void IncrementalTmnfEval::Insert(core::PredId pred, int32_t node) {
  if (!unary_[pred].Set(node)) return;
  ++num_facts_;
  insertion_log_.emplace_back(pred, node);
  if (hooked_[pred] && hook_) hook_(pred, node);
  unary_delta_.emplace_back(pred, node);
}

util::Status IncrementalTmnfEval::Propagate(const util::EvalControl* control) {
  // Each event is processed atomically: the ticker is consulted only at the
  // loop top and the event is popped only after all its rules fired, so an
  // abort leaves every queued event intact and the tc mark invariant
  // ("marked ⇒ all chain positions beyond it are marked") unbroken — a later
  // Propagate resumes exactly where this one stopped.
  util::EvalTicker ticker(control);
  while (!unary_delta_.empty() || !binary_delta_.empty()) {
    MD_RETURN_NOT_OK(ticker.Tick());
    if (!unary_delta_.empty()) {
      const auto [pred, a] = unary_delta_.front();
      for (int32_t rid : rules_by_p0_[pred]) {
        const CompiledRule& rule = rules_[rid];
        switch (rule.kind) {
          case RuleKind::kCopy:
            Insert(rule.head, a);
            break;
          case RuleKind::kAnd: {
            // Indexed under both conjuncts; probe the other one.
            const core::PredId other = pred == rule.p0 ? rule.p1 : rule.p0;
            if (unary_[other].Test(a)) Insert(rule.head, a);
            break;
          }
          case RuleKind::kJoinFwd:
            for (int32_t b : rels_[rule.rel].fwd[a]) Insert(rule.head, b);
            break;
          case RuleKind::kJoinBwd:
            for (int32_t b : rels_[rule.rel].bwd[a]) Insert(rule.head, b);
            break;
          case RuleKind::kTcFwd:
            // p0 at a ⇒ head holds at a and every sibling after it. Walk
            // forward until a position this rule already covered: everything
            // beyond is covered too (marks only grow from covered seeds).
            for (int32_t n = a; n >= 0; n = next_sibling_[n]) {
              if (!tc_marks_[rule.tc_mark].Set(n)) break;
              Insert(rule.head, n);
            }
            break;
          case RuleKind::kTcBwd:
            for (int32_t n = a; n >= 0; n = prev_sibling_[n]) {
              if (!tc_marks_[rule.tc_mark].Set(n)) break;
              Insert(rule.head, n);
            }
            break;
        }
      }
      unary_delta_.pop_front();
      continue;
    }
    const auto [rel, a, b] = binary_delta_.front();
    for (int32_t rid : rules_by_rel_[rel]) {
      const CompiledRule& rule = rules_[rid];
      if (rule.kind == RuleKind::kJoinFwd) {
        if (unary_[rule.p0].Test(a)) Insert(rule.head, b);
      } else {
        if (unary_[rule.p0].Test(b)) Insert(rule.head, a);
      }
    }
    binary_delta_.pop_front();
  }
  return util::Status::OK();
}

void IncrementalTmnfEval::SetDeriveHook(
    const std::vector<core::PredId>& preds,
    std::function<void(core::PredId, int32_t)> hook) {
  hooked_.assign(num_preds_, false);
  for (core::PredId p : preds) {
    if (p >= 0 && p < num_preds_) hooked_[p] = true;
  }
  hook_ = std::move(hook);
  if (!hook_) return;
  for (const auto& [pred, node] : insertion_log_) {
    if (hooked_[pred]) hook_(pred, node);
  }
}

bool IncrementalTmnfEval::Contains(core::PredId pred, int32_t node) const {
  return pred >= 0 && pred < num_preds_ && unary_[pred].Test(node);
}

std::vector<int32_t> IncrementalTmnfEval::Members(core::PredId pred) const {
  std::vector<int32_t> out;
  if (pred < 0 || pred >= num_preds_) return out;
  const Bits& bits = unary_[pred];
  for (size_t w = 0; w < bits.words.size(); ++w) {
    uint64_t word = bits.words[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      out.push_back(static_cast<int32_t>(w * 64 + bit));
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace mdatalog::stream
