#include "src/telemetry/telemetry.h"

#include <algorithm>
#include <utility>

#include "src/telemetry/export.h"

namespace mdatalog::telemetry {

Telemetry::Telemetry(const TelemetryOptions& options) : options_(options) {}

std::unique_ptr<TraceContext> Telemetry::StartTrace(const char* kind) {
  if (!options_.enabled) return nullptr;
  if (options_.trace_sample_every > 1) {
    const uint64_t draw = trace_draw_.fetch_add(1, std::memory_order_relaxed);
    if (draw % static_cast<uint64_t>(options_.trace_sample_every) != 0) {
      return nullptr;
    }
  }
  return std::make_unique<TraceContext>(kind);
}

void Telemetry::FinishTrace(std::unique_ptr<TraceContext> trace,
                            util::StatusCode status) {
  if (trace == nullptr) return;
  trace->set_status(status);
  trace->Close();

  // Fold every span into its per-stage latency histogram, and the whole
  // request into the per-kind one. The name strings are short (SSO) and the
  // registry lookup is a shared-lock map probe — ~µs total per request,
  // off the request's own critical path only in the sense that the answer
  // has already been produced; the 3% overhead gate in BENCH_telemetry
  // keeps this honest.
  std::string name;
  for (const SpanRecord& s : trace->spans()) {
    name.assign("stage.");
    name += s.name;
    name += ".ns";
    registry_.GetHistogram(name)->Record(s.duration_ns());
  }
  name.assign("request.");
  name += trace->kind();
  name += ".ns";
  registry_.GetHistogram(name)->Record(trace->duration_ns());

  FinishedTrace finished;
  finished.kind = trace->kind();
  finished.start_ns = trace->start_ns();
  finished.duration_ns = trace->end_ns() - trace->start_ns();
  finished.page_bytes = trace->page_bytes();
  finished.nodes = trace->nodes();
  finished.dropped_spans = trace->dropped_spans();
  finished.status = status;
  finished.spans = std::move(trace->mutable_spans());

  if (finished.duration_ns >= options_.slow_request_ns) {
    registry_.GetCounter("trace.slow_requests")->Add(1);
    const uint64_t draw = slow_draw_.fetch_add(1, std::memory_order_relaxed);
    if (options_.slow_log_sample_every <= 1 ||
        draw % static_cast<uint64_t>(options_.slow_log_sample_every) == 0) {
      std::string entry = FormatBreakdown(finished);
      std::lock_guard<std::mutex> lock(slow_mu_);
      slow_log_.push_back(std::move(entry));
      while (slow_log_.size() >
             static_cast<size_t>(std::max(1, options_.slow_log_capacity))) {
        slow_log_.pop_front();
      }
    }
  }

  std::lock_guard<std::mutex> lock(ring_mu_);
  ring_.push_back(std::move(finished));
  while (ring_.size() >
         static_cast<size_t>(std::max(1, options_.trace_ring_capacity))) {
    ring_.pop_front();
  }
}

std::vector<FinishedTrace> Telemetry::RecentTraces() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return std::vector<FinishedTrace>(ring_.begin(), ring_.end());
}

std::vector<std::string> Telemetry::SlowRequestLog() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return std::vector<std::string>(slow_log_.begin(), slow_log_.end());
}

}  // namespace mdatalog::telemetry
