#include "src/telemetry/export.h"

#include <cinttypes>
#include <cstdio>

#include "src/util/status.h"

namespace mdatalog::telemetry {

namespace {

/// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*; we map everything
/// outside [a-zA-Z0-9_] to '_' and prefix the library namespace.
std::string PromName(const std::string& name) {
  std::string out = "mdatalog_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

/// JSON string escaping for the controlled names that appear in exports
/// (metric names, span names, status codes — no exotic unicode).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDurationMs(std::string* out, int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  *out += buf;
}

void AppendHistogramJson(std::string* out, const HistogramSnapshot& h) {
  *out += "{\"count\":";
  AppendUint(out, h.count);
  *out += ",\"sum\":";
  AppendInt(out, h.sum);
  *out += ",\"max\":";
  AppendInt(out, h.max);
  *out += ",\"mean\":";
  AppendInt(out, h.Mean());
  *out += ",\"p50\":";
  AppendInt(out, h.Percentile(0.50));
  *out += ",\"p90\":";
  AppendInt(out, h.Percentile(0.90));
  *out += ",\"p99\":";
  AppendInt(out, h.Percentile(0.99));
  *out += ",\"buckets\":[";
  bool first = true;
  for (int32_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
    if (h.counts[b] == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    *out += "[";
    AppendInt(out, HistogramSnapshot::BucketLowerBound(b));
    out->push_back(',');
    AppendUint(out, h.counts[b]);
    *out += "]";
  }
  *out += "]}";
}

void AppendSpanJson(std::string* out, const SpanRecord& s, int64_t trace_start) {
  *out += "{\"name\":";
  AppendJsonString(out, s.name);
  *out += ",\"start_ns\":";
  AppendInt(out, s.start_ns - trace_start);
  *out += ",\"duration_ns\":";
  AppendInt(out, s.duration_ns());
  *out += ",\"parent\":";
  AppendInt(out, s.parent);
  *out += ",\"depth\":";
  AppendInt(out, s.depth);
  if (s.tag != nullptr) {
    *out += ",\"tag\":";
    AppendJsonString(out, s.tag);
  }
  for (int32_t i = 0; i < s.num_values; ++i) {
    *out += ",";
    AppendJsonString(out, s.value_names[i]);
    *out += ":";
    AppendInt(out, s.values[i]);
  }
  *out += "}";
}

}  // namespace

std::string ToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, v] : snapshot.counters) {
    const std::string p = PromName(name) + "_total";
    out += "# TYPE " + p + " counter\n" + p + " ";
    AppendInt(&out, v);
    out += "\n";
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " gauge\n" + p + " ";
    AppendInt(&out, v);
    out += "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " histogram\n";
    uint64_t cumulative = 0;
    for (int32_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
      if (h.counts[b] == 0) continue;
      cumulative += h.counts[b];
      out += p + "_bucket{le=\"";
      AppendInt(&out, HistogramSnapshot::BucketUpperBound(b) - 1);
      out += "\"} ";
      AppendUint(&out, cumulative);
      out += "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} ";
    AppendUint(&out, h.count);
    out += "\n" + p + "_sum ";
    AppendInt(&out, h.sum);
    out += "\n" + p + "_count ";
    AppendUint(&out, h.count);
    out += "\n";
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot,
                   const std::vector<FinishedTrace>& traces) {
  std::string out;
  out.reserve(8192);
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendInt(&out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendInt(&out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendHistogramJson(&out, h);
  }
  out += "},\"traces\":[";
  first = true;
  for (const FinishedTrace& t : traces) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"kind\":";
    AppendJsonString(&out, t.kind != nullptr ? t.kind : "");
    out += ",\"duration_ns\":";
    AppendInt(&out, t.duration_ns);
    out += ",\"page_bytes\":";
    AppendInt(&out, t.page_bytes);
    out += ",\"nodes\":";
    AppendInt(&out, t.nodes);
    out += ",\"status\":";
    AppendJsonString(&out, util::StatusCodeName(t.status));
    if (t.dropped_spans > 0) {
      out += ",\"dropped_spans\":";
      AppendInt(&out, t.dropped_spans);
    }
    out += ",\"spans\":[";
    bool sfirst = true;
    for (const SpanRecord& s : t.spans) {
      if (!sfirst) out.push_back(',');
      sfirst = false;
      AppendSpanJson(&out, s, t.start_ns);
    }
    out += "]}";
  }
  // The linearity scatter: one (nodes, bytes, wall) point per retained
  // request — wall_ns must grow linearly in nodes (Theorem 4.2).
  out += "],\"scatter\":[";
  first = true;
  for (const FinishedTrace& t : traces) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"nodes\":";
    AppendInt(&out, t.nodes);
    out += ",\"bytes\":";
    AppendInt(&out, t.page_bytes);
    out += ",\"wall_ns\":";
    AppendInt(&out, t.duration_ns);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string FormatBreakdown(const FinishedTrace& trace) {
  std::string out;
  out.reserve(512);
  out += trace.kind != nullptr ? trace.kind : "request";
  out.push_back(' ');
  AppendDurationMs(&out, trace.duration_ns);
  out += " status=";
  out += util::StatusCodeName(trace.status);
  if (trace.page_bytes > 0) {
    out += " bytes=";
    AppendInt(&out, trace.page_bytes);
  }
  if (trace.nodes > 0) {
    out += " nodes=";
    AppendInt(&out, trace.nodes);
  }
  out.push_back('\n');
  for (const SpanRecord& s : trace.spans) {
    out.append(static_cast<size_t>(s.depth + 1) * 2, ' ');
    out += s.name;
    out.push_back(' ');
    AppendDurationMs(&out, s.duration_ns());
    if (s.tag != nullptr) {
      out += " [";
      out += s.tag;
      out += "]";
    }
    for (int32_t i = 0; i < s.num_values; ++i) {
      out += i == 0 ? " (" : ", ";
      out += s.value_names[i];
      out.push_back('=');
      AppendInt(&out, s.values[i]);
    }
    if (s.num_values > 0) out += ")";
    out.push_back('\n');
  }
  if (trace.dropped_spans > 0) {
    out += "  … ";
    AppendInt(&out, trace.dropped_spans);
    out += " spans dropped (cap)\n";
  }
  return out;
}

}  // namespace mdatalog::telemetry
