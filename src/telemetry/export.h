#pragma once

#include <string>
#include <vector>

#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"

/// \file export.h
/// Serialization of telemetry state for scrapers and humans:
///
///  * ToPrometheus — the Prometheus text exposition format (0.0.4):
///    counters as `<name>_total`, gauges plain, histograms with cumulative
///    `_bucket{le="…"}` series (only occupied cut points are emitted — a
///    256-bucket log histogram would otherwise dominate the scrape),
///    `_sum` and `_count`. Metric names are sanitized ('.' → '_') and
///    prefixed `mdatalog_`.
///
///  * ToJson — a single structured document: counters, gauges, histograms
///    (with derived p50/p90/p99), the recent completed traces with their
///    full span trees, and a per-page `scatter` array (nodes, page bytes,
///    wall ns per request) — the series that makes the paper's
///    linear-time-per-page claim (Theorem 4.2) empirically checkable:
///    plot wall_ns against nodes, the fit must stay a line.
///
///  * FormatBreakdown — one request's span tree as an indented
///    human-readable string (the slow-request log entry format).

namespace mdatalog::telemetry {

std::string ToPrometheus(const MetricsSnapshot& snapshot);

std::string ToJson(const MetricsSnapshot& snapshot,
                   const std::vector<FinishedTrace>& traces = {});

std::string FormatBreakdown(const FinishedTrace& trace);

}  // namespace mdatalog::telemetry
