#include "src/telemetry/metrics.h"

#include <algorithm>
#include <mutex>

namespace mdatalog::telemetry {

int32_t ThreadStripe() {
  static std::atomic<uint32_t> next{0};
  thread_local const int32_t stripe = static_cast<int32_t>(
      next.fetch_add(1, std::memory_order_relaxed) % kStripes);
  return stripe;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (int32_t b = 0; b < kNumBuckets; ++b) counts[b] += other.counts[b];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

int64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), then walk the CDF.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (int32_t b = 0; b < kNumBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (seen + counts[b] >= rank) {
      const int64_t lo = BucketLowerBound(b);
      const int64_t hi = std::min(BucketUpperBound(b), max + 1);
      if (hi <= lo + 1) return lo;
      // Linear interpolation within the bucket: rank position among the
      // bucket's own observations.
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(counts[b]);
      return lo + static_cast<int64_t>(frac * static_cast<double>(hi - lo - 1));
    }
    seen += counts[b];
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  for (const Stripe& s : stripes_) {
    for (int32_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
      const uint64_t c = s.counts[b].load(std::memory_order_relaxed);
      out.counts[b] += c;
      out.count += c;
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
  }
  return out;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) histograms[name].Merge(h);
}

template <typename T>
T* MetricsRegistry::FindOrCreate(
    std::shared_mutex& mu,
    std::unordered_map<std::string, std::unique_ptr<T>>& map,
    std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu);
    auto it = map.find(std::string(name));
    if (it != map.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu);
  auto [it, inserted] = map.try_emplace(std::string(name));
  if (inserted) it->second = std::make_unique<T>();
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return FindOrCreate(mu_, counters_, name);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return FindOrCreate(mu_, gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return FindOrCreate(mu_, histograms_, name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->Snapshot();
  }
  return out;
}

}  // namespace mdatalog::telemetry
