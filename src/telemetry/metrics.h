#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/util/bits.h"

/// \file metrics.h
/// The lock-free metrics registry behind the serving pipeline's
/// observability layer: monotonic counters, gauges, and log-bucketed
/// latency histograms, all recordable from hot paths in ~ns.
///
/// Recording never takes a lock and never touches a cache line shared with
/// another recording thread: every counter and histogram is striped into
/// kStripes cache-line-aligned slots, each thread writes (relaxed atomics)
/// to the stripe assigned to it at first use, and only snapshots — the cold
/// path — sum across stripes. Registration (name → handle) is a
/// shared_mutex-guarded map, hit once per metric per call site; handles are
/// stable for the registry's lifetime, so call sites cache them.
///
/// Histograms are log-bucketed with power-of-two sub-buckets (HDR-style):
/// values 0..3 get exact buckets, every later power of two is split into 4
/// sub-buckets, so the relative quantile error is bounded by 25% across the
/// full int64 range with 256 buckets total. That is the right trade for
/// latency distributions — "p99 is ~1.2ms" is actionable, a KB-exact CDF is
/// not — and it makes snapshots mergeable by plain bucket-wise addition
/// (the property the multi-threaded recorder design and the cross-process
/// roll-ups both rely on).

namespace mdatalog::telemetry {

/// Stripe count for counters and histograms. 16 is enough that the 4–8
/// worker threads of a serving runtime virtually never share a stripe, while
/// keeping a histogram's footprint at 16 × 2KB.
inline constexpr int kStripes = 16;

/// The stripe this thread records into: assigned round-robin at first use,
/// so up to kStripes concurrent threads get private stripes.
int32_t ThreadStripe();

/// Monotonic counter. Add() is one relaxed fetch_add on a thread-private
/// cache line; Value() sums the stripes (cold path).
class Counter {
 public:
  void Add(int64_t delta = 1) {
    stripes_[ThreadStripe()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t sum = 0;
    for (const Stripe& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<int64_t> v{0};
  };
  std::array<Stripe, kStripes> stripes_{};
};

/// Point-in-time value. Not striped: gauges are set at request granularity
/// (peaks, sizes), not per tuple, so a single atomic is the right cost.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (peak tracking); lock-free CAS loop.
  void SetMax(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Mergeable point-in-time view of one histogram (or a merge of several).
struct HistogramSnapshot {
  static constexpr int32_t kSubBits = 2;              ///< 4 sub-buckets/octave
  static constexpr int32_t kSub = 1 << kSubBits;
  static constexpr int32_t kNumBuckets = 256;

  std::array<uint64_t, kNumBuckets> counts{};
  uint64_t count = 0;   ///< Σ counts
  int64_t sum = 0;      ///< Σ recorded values
  int64_t max = 0;      ///< largest recorded value (0 when empty)

  /// Bucket index of `v` (values < 0 clamp to 0).
  static int32_t BucketOf(int64_t v) {
    const uint64_t u = v < 0 ? 0 : static_cast<uint64_t>(v);
    if (u < kSub) return static_cast<int32_t>(u);
    const int32_t msb = 63 - util::CountLeadingZeros64(u);
    const int32_t shift = msb - kSubBits;
    const int32_t sub = static_cast<int32_t>((u >> shift) & (kSub - 1));
    return (shift + 1) * kSub + sub;
  }
  /// Smallest value mapping to bucket `b` (inclusive).
  static int64_t BucketLowerBound(int32_t b) {
    if (b < kSub) return b;
    const int32_t shift = b / kSub - 1;
    const int64_t sub = b % kSub;
    return (int64_t{kSub} + sub) << shift;
  }
  /// One past the largest value mapping to bucket `b`.
  static int64_t BucketUpperBound(int32_t b) {
    return b + 1 < kNumBuckets ? BucketLowerBound(b + 1)
                               : std::numeric_limits<int64_t>::max();
  }

  void Merge(const HistogramSnapshot& other);
  /// Quantile estimate (q in [0,1]): linear interpolation inside the
  /// containing bucket, so the error is bounded by the bucket width (≤25%
  /// relative). Returns 0 when empty.
  int64_t Percentile(double q) const;
  int64_t Mean() const {
    return count == 0 ? 0 : sum / static_cast<int64_t>(count);
  }
};

/// Log-bucketed histogram. Record() is a bucket computation (three ALU ops)
/// plus two relaxed fetch_adds on a thread-private stripe.
class Histogram {
 public:
  void Record(int64_t v) {
    Stripe& s = stripes_[ThreadStripe()];
    s.counts[HistogramSnapshot::BucketOf(v)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(v < 0 ? 0 : v, std::memory_order_relaxed);
    // Peak keeping: one relaxed load + (rarely) a CAS.
    int64_t cur = s.max.load(std::memory_order_relaxed);
    while (v > cur &&
           !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, HistogramSnapshot::kNumBuckets> counts{};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> max{0};
  };
  std::array<Stripe, kStripes> stripes_{};
};

/// Everything a registry knows, frozen: counters and gauges by name, plus
/// full histogram snapshots. std::map so exports are deterministically
/// ordered. Merge() folds another snapshot in (multi-registry roll-ups).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void Merge(const MetricsSnapshot& other);
};

/// Name-keyed metric registry. GetCounter/GetGauge/GetHistogram return
/// stable handles, creating the metric on first use (shared-lock fast path
/// on every later lookup); recording through a handle never touches the
/// registry again. Thread-safe throughout.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  template <typename T>
  static T* FindOrCreate(
      std::shared_mutex& mu,
      std::unordered_map<std::string, std::unique_ptr<T>>& map,
      std::string_view name);

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mdatalog::telemetry
