#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

/// \file telemetry.h
/// The per-runtime telemetry bundle: one metrics registry, the
/// trace-sampling policy, a bounded ring buffer of recently completed
/// traces, and the sampled slow-request log.
///
/// Life of a traced request:
///   1. the runtime asks StartTrace("wrap") — null when telemetry is
///      disabled or the request lost the 1-in-N sampling draw, in which
///      case every downstream TraceSpan is a no-op branch;
///   2. the executing thread installs the trace (TraceScope) and the
///      pipeline's instrumentation points record spans against it;
///   3. FinishTrace() closes the trace, folds every span into the
///      per-stage latency histograms ("stage.<name>.ns") and the
///      per-kind request histogram ("request.<kind>.ns"), pushes the
///      trace into the ring buffer, and — when the request exceeded the
///      slow threshold and won its own 1-in-N draw — formats a breakdown
///      into the slow-request log. None of this touches the request's
///      critical path beyond the fold itself (~µs).
///
/// Counters are NOT gated by `enabled`: the runtime's serving counters
/// (pages_wrapped, deadline_exceeded, …) record through the registry
/// unconditionally — striped relaxed increments, cheaper than the mutexed
/// counters they replaced — so WrapperRuntime::stats() is always exact.
/// `enabled` gates only tracing (clock reads, span storage, histogram
/// folds).

namespace mdatalog::telemetry {

struct TelemetryOptions {
  /// Master switch for tracing + histograms. Counters always record.
  bool enabled = true;
  /// Trace one request in N (1 = every request). Sampled requests pay two
  /// clock reads per span; unsampled requests pay one branch per span.
  int32_t trace_sample_every = 1;
  /// Completed traces retained for export (the nodes-vs-wall-time scatter
  /// and the per-request breakdowns read these).
  int32_t trace_ring_capacity = 256;
  /// A request slower than this is eligible for the slow-request log.
  int64_t slow_request_ns = 50'000'000;  // 50ms
  /// Log one eligible slow request in N (1 = all of them).
  int32_t slow_log_sample_every = 1;
  /// Formatted slow-request breakdowns retained.
  int32_t slow_log_capacity = 64;
};

/// A completed request trace, as retained by the ring buffer.
struct FinishedTrace {
  const char* kind = nullptr;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  int64_t page_bytes = 0;
  int64_t nodes = 0;
  int64_t dropped_spans = 0;
  util::StatusCode status = util::StatusCode::kOk;
  std::vector<SpanRecord> spans;
};

class Telemetry {
 public:
  explicit Telemetry(const TelemetryOptions& options = {});

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const TelemetryOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled; }
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  /// A fresh trace for one request, or nullptr (disabled / lost the
  /// sampling draw). The caller threads it to the executing thread, wraps
  /// the work in a TraceScope, and hands it back via FinishTrace.
  std::unique_ptr<TraceContext> StartTrace(const char* kind);

  /// Closes the trace, records `status` on it, folds spans into the stage
  /// histograms, retains it in the ring buffer and (if slow + sampled)
  /// the slow-request log. Null-safe.
  void FinishTrace(std::unique_ptr<TraceContext> trace,
                   util::StatusCode status);

  /// Snapshot of the completed-trace ring, oldest first.
  std::vector<FinishedTrace> RecentTraces() const;
  /// Formatted breakdowns of sampled slow requests, oldest first.
  std::vector<std::string> SlowRequestLog() const;

 private:
  const TelemetryOptions options_;
  MetricsRegistry registry_;
  std::atomic<uint64_t> trace_draw_{0};
  std::atomic<uint64_t> slow_draw_{0};

  mutable std::mutex ring_mu_;
  std::deque<FinishedTrace> ring_;

  mutable std::mutex slow_mu_;
  std::deque<std::string> slow_log_;
};

}  // namespace mdatalog::telemetry
