#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <vector>

#include "src/util/status.h"

/// \file trace.h
/// Request-scoped trace spans for the serving pipeline.
///
/// A TraceContext is created per request (by the runtime's Telemetry bundle,
/// or by a caller who wants the breakdown directly via
/// RequestOptions::trace) and travels with the request: the executing thread
/// installs it as the thread-current trace (TraceScope), and every
/// instrumented layer — HTML parse, EDB materialization, cache lookups,
/// plan replay, fixpoint rounds, SAT solve, stream Feed/Propagate/Finish —
/// opens a TraceSpan against CurrentTrace(). Spans nest (parent/depth follow
/// the open-span stack), carry nanosecond monotonic timestamps, an optional
/// outcome tag and up to three named integer values (round counts, delta
/// sizes, SAT conflicts, …).
///
/// Cost contract:
///  * untraced fast path: a TraceSpan over a null context is one branch — no
///    clock read, no allocation, nothing;
///  * traced path: two steady_clock reads per span plus amortized-O(1)
///    vector growth (the span array reserves a request's worth up front);
///  * unwind safety: TraceSpan is RAII, so spans close on every early
///    return — deadline unwinds included — and Close() force-closes
///    stragglers when the trace finishes, so a finished trace never has an
///    open span (pinned in telemetry_test.cc).
///
/// A TraceContext is owned by one request and must only be touched by the
/// thread currently executing that request (the runtime serializes this).

namespace mdatalog::telemetry {

/// steady_clock now, as nanoseconds since an arbitrary epoch.
inline int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One completed (or still-open) span. `name`, `tag` and the value names
/// must be string literals (static lifetime) — spans never own strings.
struct SpanRecord {
  static constexpr int32_t kMaxValues = 3;

  const char* name = nullptr;
  int64_t start_ns = 0;
  int64_t end_ns = 0;              ///< 0 while open
  int32_t parent = -1;             ///< index into spans(), -1 = top level
  int32_t depth = 0;
  const char* tag = nullptr;       ///< outcome ("hit", "miss", …), optional
  std::array<const char*, kMaxValues> value_names{};
  std::array<int64_t, kMaxValues> values{};
  int32_t num_values = 0;

  int64_t duration_ns() const { return end_ns > start_ns ? end_ns - start_ns : 0; }
};

/// The span log of one request. Spans are appended in start order; the cap
/// bounds a pathological request (a megabyte page fed one byte at a time) to
/// kMaxSpans records — later spans are counted in dropped_spans() instead of
/// recorded, and Begin/End stay balanced throughout.
class TraceContext {
 public:
  static constexpr size_t kMaxSpans = 4096;

  /// `kind` labels the request ("wrap", "stream", …); static lifetime.
  explicit TraceContext(const char* kind)
      : kind_(kind), start_ns_(MonotonicNowNs()) {
    spans_.reserve(32);
    open_.reserve(8);
  }

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Debug-build enforcement of the RequestOptions::trace lifetime contract:
  /// a caller-owned trace must outlive every async request that records into
  /// it. The runtime increments before enqueueing such a request and
  /// decrements before the request's future resolves (stream sessions hold a
  /// reference for their whole lifetime), so destroying a trace while the
  /// count is nonzero is always a caller bug — about to become a use-after-
  /// free on a worker thread.
  ~TraceContext() {
    assert(inflight_requests() == 0 &&
           "TraceContext destroyed while an async request still references "
           "it (RequestOptions::trace must outlive the future / session)");
  }

  void AddInflightRequest() {
    inflight_.fetch_add(1, std::memory_order_relaxed);
  }
  void ReleaseInflightRequest() {
    inflight_.fetch_sub(1, std::memory_order_release);
  }
  /// Async requests currently referencing this trace. Maintained in every
  /// build (one relaxed atomic per async request); only the destructor
  /// assertion compiles out under NDEBUG.
  int32_t inflight_requests() const {
    return inflight_.load(std::memory_order_acquire);
  }

  /// Opens a span; returns its index, or -1 when the span cap is hit (the
  /// matching EndSpan(-1) is a no-op).
  int32_t BeginSpan(const char* name);
  void EndSpan(int32_t index);

  /// Force-closes any spans still open (stamped with the close time) and
  /// stamps the trace end. Idempotent.
  void Close();

  const char* kind() const { return kind_; }
  int64_t start_ns() const { return start_ns_; }
  int64_t end_ns() const { return end_ns_; }
  int64_t duration_ns() const {
    return (end_ns_ > 0 ? end_ns_ : MonotonicNowNs()) - start_ns_;
  }
  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::vector<SpanRecord>& mutable_spans() { return spans_; }
  int32_t open_spans() const { return static_cast<int32_t>(open_.size()); }
  int64_t dropped_spans() const { return dropped_spans_; }

  /// Request metadata for the per-page scatter (nodes vs wall time).
  void set_page_bytes(int64_t b) { page_bytes_ = b; }
  void set_nodes(int64_t n) { nodes_ = n; }
  int64_t page_bytes() const { return page_bytes_; }
  int64_t nodes() const { return nodes_; }

  void set_status(util::StatusCode code) { status_ = code; }
  util::StatusCode status() const { return status_; }

 private:
  friend class TraceSpan;

  const char* kind_;
  int64_t start_ns_;
  int64_t end_ns_ = 0;
  int64_t page_bytes_ = 0;
  int64_t nodes_ = 0;
  int64_t dropped_spans_ = 0;
  util::StatusCode status_ = util::StatusCode::kOk;
  std::vector<SpanRecord> spans_;
  std::vector<int32_t> open_;  // stack of open span indexes
  std::atomic<int32_t> inflight_{0};
};

/// The trace of the request this thread is currently executing, or nullptr.
/// Deep layers (EDB materialization, fixpoint engines, the SAT core) read
/// this instead of threading a pointer through every signature.
TraceContext* CurrentTrace();

/// Installs `trace` (may be null) as the thread-current trace for the
/// enclosing scope; restores the previous one on destruction.
class TraceScope {
 public:
  explicit TraceScope(TraceContext* trace);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext* prev_;
};

/// RAII span. Over a null context every member is a no-op (one branch).
class TraceSpan {
 public:
  TraceSpan(TraceContext* ctx, const char* name) : ctx_(ctx) {
    if (ctx_ != nullptr) index_ = ctx_->BeginSpan(name);
  }
  ~TraceSpan() {
    if (ctx_ != nullptr) ctx_->EndSpan(index_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when the span is actually recording (lets call sites skip the
  /// cost of computing values nobody will see).
  explicit operator bool() const { return ctx_ != nullptr && index_ >= 0; }

  /// Sets the outcome tag (string literal).
  void Tag(const char* tag) {
    if (*this) ctx_->spans_[index_].tag = tag;
  }
  /// Attaches a named value (first kMaxValues stick).
  void Value(const char* name, int64_t v) {
    if (!*this) return;
    SpanRecord& s = ctx_->spans_[index_];
    if (s.num_values < SpanRecord::kMaxValues) {
      s.value_names[s.num_values] = name;
      s.values[s.num_values] = v;
      ++s.num_values;
    }
  }

 private:
  TraceContext* ctx_;
  int32_t index_ = -1;
};

}  // namespace mdatalog::telemetry
