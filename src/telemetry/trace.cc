#include "src/telemetry/trace.h"

namespace mdatalog::telemetry {

namespace {
thread_local TraceContext* g_current_trace = nullptr;
}  // namespace

TraceContext* CurrentTrace() { return g_current_trace; }

TraceScope::TraceScope(TraceContext* trace) : prev_(g_current_trace) {
  g_current_trace = trace;
}

TraceScope::~TraceScope() { g_current_trace = prev_; }

int32_t TraceContext::BeginSpan(const char* name) {
  if (spans_.size() >= kMaxSpans) {
    ++dropped_spans_;
    return -1;
  }
  const int32_t index = static_cast<int32_t>(spans_.size());
  SpanRecord span;
  span.name = name;
  span.start_ns = MonotonicNowNs();
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = static_cast<int32_t>(open_.size());
  spans_.push_back(span);
  open_.push_back(index);
  return index;
}

void TraceContext::EndSpan(int32_t index) {
  if (index < 0) return;  // dropped at Begin (span cap)
  const int64_t now = MonotonicNowNs();
  // Normal case: exact LIFO. Defensive: if an inner span was leaked open,
  // close everything above `index` with the same timestamp so the stack
  // stays consistent.
  while (!open_.empty()) {
    const int32_t top = open_.back();
    open_.pop_back();
    spans_[top].end_ns = now;
    if (top == index) break;
  }
}

void TraceContext::Close() {
  const int64_t now = MonotonicNowNs();
  while (!open_.empty()) {
    spans_[open_.back()].end_ns = now;
    open_.pop_back();
  }
  if (end_ns_ == 0) end_ns_ = now;
}

}  // namespace mdatalog::telemetry
