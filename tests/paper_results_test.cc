// Cross-cutting reproductions of the paper's remaining formal results:
// Corollary 4.7 (tree-language recognition by monadic datalog ≡ MSO ≡
// regular), the Remark 2.2 infinite-alphabet discipline, and integration
// checks that chain several theorems together.

#include <gtest/gtest.h>

#include "src/core/examples.h"
#include "src/core/grounder.h"
#include "src/core/parser.h"
#include "src/elog/from_datalog.h"
#include "src/elog/eval.h"
#include "src/mso/compile.h"
#include "src/mso/formula.h"
#include "src/mso/to_datalog.h"
#include "src/tmnf/pipeline.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

namespace mdatalog {
namespace {

using tree::Tree;

/// Corollary 4.7 acceptance: a program with an "accept" predicate accepts a
/// tree iff accept(root) is in the fixpoint.
bool ProgramAccepts(const core::Program& p, const Tree& t) {
  auto result = core::EvaluateOnTree(p, t);
  EXPECT_TRUE(result.ok());
  core::PredId accept = p.preds().Find("accept");
  EXPECT_GE(accept, 0);
  return result->ContainsUnary(accept, t.root());
}

// ---------------------------------------------------------------------------
// Corollary 4.7: tree languages in monadic datalog ≡ MSO
// ---------------------------------------------------------------------------

TEST(Corollary47Test, DtdLikeLanguageDatalogVsMso) {
  // The "DTD": every child of a table-labeled node is labeled tr.
  // As monadic datalog with acceptance (positive form: verified top-down by
  // scanning for violations bottom-up would need negation, so we state the
  // *violation-free* check positively: ok(x) for every node whose subtree
  // conforms; accept at the root).
  auto program = core::ParseProgram(R"(
    kidsok(X)  :- leaf(X).
    kidsok(X)  :- firstchild(X, Y), chainok(Y), label_table(X).
    kidsok(X)  :- firstchild(X, Y), anychain(Y), label_tr(X).
    kidsok(X)  :- firstchild(X, Y), anychain(Y), label_td(X).
    % chainok: every node in this sibling chain is a conforming tr.
    chainok(Y) :- lastsibling(Y), label_tr(Y), kidsok(Y).
    chainok(Y) :- label_tr(Y), kidsok(Y), nextsibling(Y, Z), chainok(Z).
    % anychain: every node in this chain conforms (labels unconstrained).
    anychain(Y) :- lastsibling(Y), kidsok(Y).
    anychain(Y) :- kidsok(Y), nextsibling(Y, Z), anychain(Z).
    accept(X)  :- root(X), kidsok(X), label_tr(X).
    accept(X)  :- root(X), kidsok(X), label_td(X).
    accept(X)  :- root(X), kidsok(X), label_table(X).
  )");
  ASSERT_TRUE(program.ok());

  // The same language in MSO: child(p, x) is encoded per pair as "x belongs
  // to every set that contains p's first child and is closed under
  // nextsibling" (the standard reachability trick over the binary encoding).
  auto closed = mso::ParseFormula(
      "forall p. forall x. ((label_table(p) & "
      "(forall S. (((forall y. (firstchild(p, y) -> in(y, S))) & "
      "(forall u. (forall v. ((in(u, S) & nextsibling(u, v)) -> in(v, S)))))"
      " -> in(x, S)))) -> label_tr(x))");
  ASSERT_TRUE(closed.ok());
  mso::MsoCompileOptions opts;
  opts.alphabet = {"table", "tr", "td"};
  auto bta = mso::CompileSentence(*closed, opts);
  ASSERT_TRUE(bta.ok()) << bta.status().ToString();

  util::Rng rng(505);
  int accepted = 0, rejected = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(15)),
                              {"table", "tr", "td"});
    bool datalog = ProgramAccepts(*program, t);
    auto cls = mso::ClassOfNodes(t, opts.alphabet);
    ASSERT_TRUE(cls.ok());
    auto msor = mso::BtaAcceptsTree(*bta, t, *cls);
    ASSERT_TRUE(msor.ok());
    EXPECT_EQ(datalog, *msor) << tree::ToDebugString(t);
    (datalog ? accepted : rejected) += 1;
  }
  // The corpus exercises both outcomes.
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

TEST(Corollary47Test, EvenALanguageAcceptance) {
  // Language: the whole document has an even number of a's — the Example
  // 3.2 program, read at the root (query pred as acceptance).
  core::Program p = core::EvenAProgram({"b"});
  util::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(25)),
                              {"a", "b"});
    int32_t a_count = 0;
    for (tree::NodeId n = 0; n < t.size(); ++n) {
      if (t.label_name(n) == "a") ++a_count;
    }
    auto result = core::EvaluateOnTree(p, t);
    ASSERT_TRUE(result.ok());
    bool root_selected = result->ContainsUnary(p.query_pred(), t.root());
    EXPECT_EQ(root_selected, a_count % 2 == 0) << tree::ToDebugString(t);
  }
}

// ---------------------------------------------------------------------------
// Remark 2.2: the infinite-alphabet discipline
// ---------------------------------------------------------------------------

TEST(Remark22Test, UnseenLabelsAreEmptyPredicates) {
  // A program may reference label predicates for symbols that never occur in
  // the tree: they are empty relations, not errors.
  auto p = core::ParseProgramWithQuery(
      "q(X) :- label_blink(X). q(X) :- label_a(X).", "q");
  ASSERT_TRUE(p.ok());
  Tree t = tree::PaperExample32Tree();
  auto r = core::EvaluateOnTree(*p, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{0, 1, 2, 3}));
}

TEST(Remark22Test, ArbitraryTagAttributeLabels) {
  // Merged tag+attribute labels (the Remark's motivation) work end to end.
  auto p = core::ParseProgramWithQuery("q(X) :- label_td@price(X).", "q");
  ASSERT_FALSE(p.ok());  // '@' is not an identifier char in datalog syntax —
  // the Elog/XPath layers handle such labels; datalog reaches them via
  // programmatic construction:
  core::Program prog;
  core::PredId q = prog.preds().MustIntern("q", 1);
  core::PredId lbl = prog.preds().MustIntern("label_td@price", 1);
  prog.AddRule(core::MakeRule(core::MakeAtom(q, {core::Term::Var(0)}),
                              {core::MakeAtom(lbl, {core::Term::Var(0)})},
                              {"x"}));
  prog.set_query_pred(q);
  tree::TreeBuilder b;
  auto root = b.Root("tr@item");
  b.Child(root, "td@price");
  Tree t = b.Build();
  auto r = core::EvaluateOnTree(prog, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{1}));
}

// ---------------------------------------------------------------------------
// Integration: chaining the theorems
// ---------------------------------------------------------------------------

TEST(IntegrationTest, MsoToDatalogToTmnfToElog) {
  // Theorem 4.4 → Theorem 5.2 → Theorem 6.5: the same unary query as an MSO
  // formula, as monadic datalog, and as a visually-specifiable Elog⁻
  // wrapper, all agreeing.
  //
  // Note the datalog leg is a hand-written τ_ur program: BtaToDatalog output
  // necessarily tests the *root's* label (its context seeding), which is the
  // one thing the Theorem 6.5 construction cannot express (see
  // DatalogToElogTest.RootLabelCaveatIsDocumentedBehavior).
  auto formula =
      mso::ParseFormula("exists y. (nextsibling(y, x) & label_a(y))");
  ASSERT_TRUE(formula.ok());
  mso::MsoCompileOptions opts;
  opts.alphabet = {"a", "b", "r"};
  auto bta = mso::CompileUnaryQuery(*formula, "x", opts);
  ASSERT_TRUE(bta.ok());
  auto datalog = core::ParseProgramWithQuery(
      "query(X) :- nextsibling(Y, X), label_a(Y).", "query");
  ASSERT_TRUE(datalog.ok());
  auto elog = elog::DatalogToElog(*datalog);
  ASSERT_TRUE(elog.ok()) << elog.status().ToString();

  util::Rng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    // Fixed root label "r" (programs test only a/b — see the Theorem 6.5
    // root-label caveat).
    tree::TreeBuilder b;
    b.Root("r");
    Tree inner = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(12)),
                                  {"a", "b"});
    std::function<void(tree::NodeId, tree::NodeId)> graft =
        [&](tree::NodeId s, tree::NodeId dst) {
          tree::NodeId built = b.Child(dst, inner.label_name(s));
          for (tree::NodeId c = inner.first_child(s); c != tree::kNoNode;
               c = inner.next_sibling(c)) {
            graft(c, built);
          }
        };
    graft(inner.root(), 0);
    Tree t = b.Build();

    auto cls = mso::ClassOfNodes(t, opts.alphabet);
    ASSERT_TRUE(cls.ok());
    auto by_automaton = mso::BtaUnaryQuery(*bta, t, *cls);
    ASSERT_TRUE(by_automaton.ok());
    auto by_elog = elog::EvaluateElog(*elog, t);
    ASSERT_TRUE(by_elog.ok());
    EXPECT_EQ(by_elog->Of("query"), *by_automaton)
        << tree::ToDebugString(t);
  }
}

TEST(IntegrationTest, TmnfOfMsoProgramStaysEquivalent) {
  // Corollary 4.17 output → Theorem 5.2 → Theorem 4.2 engine.
  auto formula = mso::ParseFormula("leaf(x) & exists y. nextsibling(x, y)");
  ASSERT_TRUE(formula.ok());
  mso::MsoCompileOptions opts;
  opts.alphabet = {"a", "b"};
  auto bta = mso::CompileUnaryQuery(*formula, "x", opts);
  ASSERT_TRUE(bta.ok());
  auto datalog = mso::BtaToDatalog(*bta, opts.alphabet);
  ASSERT_TRUE(datalog.ok());
  auto tmnf = tmnf::ToTmnf(*datalog);
  ASSERT_TRUE(tmnf.ok()) << tmnf.status().ToString();
  util::Rng rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(30)),
                              {"a", "b"});
    auto lhs = core::EvaluateOnTree(*datalog, t, core::Engine::kGrounded);
    auto rhs = core::EvaluateOnTree(*tmnf, t, core::Engine::kGrounded);
    ASSERT_TRUE(lhs.ok());
    ASSERT_TRUE(rhs.ok());
    EXPECT_EQ(lhs->Query(), rhs->Query()) << tree::ToDebugString(t);
  }
}

}  // namespace
}  // namespace mdatalog
