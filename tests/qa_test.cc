#include <gtest/gtest.h>

#include <cmath>

#include "src/core/examples.h"
#include "src/core/grounder.h"
#include "src/qa/ranked.h"
#include "src/qa/ranked_to_datalog.h"
#include "src/qa/unranked.h"
#include "src/qa/unranked_to_datalog.h"
#include "src/tmnf/pipeline.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

namespace mdatalog::qa {
namespace {

using tree::Tree;

// ---------------------------------------------------------------------------
// Ranked query automata (Definition 4.8, Example 4.9)
// ---------------------------------------------------------------------------

TEST(RankedQaTest, Example49TraceOnThreeNodeTree) {
  // The paper's run: c0 --down n0--> c1 --leaf n1--> c2 --leaf n2--> c3
  //                  --up n0--> c4; root ends in s0; query result empty.
  RankedQA qa = EvenAQAr({"a"});
  Tree t = tree::PaperExample49Tree();
  QaRunOptions opts;
  opts.trace = true;
  auto run = RunRankedQA(qa, t, opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->accepted);
  EXPECT_TRUE(run->selected.empty());
  EXPECT_EQ(run->steps, 4);
  ASSERT_EQ(run->trace.size(), 4u);
  EXPECT_EQ(run->trace[0].kind, "down");
  EXPECT_EQ(run->trace[0].node, 0);
  EXPECT_EQ(run->trace[1].kind, "leaf");
  EXPECT_EQ(run->trace[2].kind, "leaf");
  EXPECT_EQ(run->trace[3].kind, "up");
  EXPECT_EQ(run->trace[3].node, 0);
}

TEST(RankedQaTest, EvenAMatchesDatalogReference) {
  // The QAr of Example 4.9 computes the Example 3.2 query on binary trees.
  RankedQA qa = EvenAQAr({"a", "b"});
  core::Program reference = core::EvenAProgram({"b"});
  util::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = tree::RandomFullBinaryTree(
        rng, static_cast<int32_t>(rng.Below(20)), {"a", "b"});
    auto run = RunRankedQA(qa, t);
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run->accepted);
    auto ref = core::EvaluateOnTree(reference, t);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(run->selected, ref->Query()) << tree::ToDebugString(t);
  }
}

TEST(RankedQaTest, ValidationCatchesIllFormedAutomata) {
  RankedQA qa = EvenAQAr({"a"});
  qa.delta_down[{1, "a", 2}] = {0, 0};  // δ↓ on a U-pair
  EXPECT_FALSE(qa.Validate().ok());

  RankedQA qa2 = EvenAQAr({"a"});
  qa2.delta_down[{0, "a", 2}] = {0};  // arity mismatch
  EXPECT_FALSE(qa2.Validate().ok());

  RankedQA qa3 = EvenAQAr({"a"});
  qa3.final_states.push_back(99);
  EXPECT_FALSE(qa3.Validate().ok());
}

TEST(RankedQaTest, RejectsOverArityTrees) {
  RankedQA qa = EvenAQAr({"a"});
  Tree t = tree::PaperExample32Tree();  // arity 3 > K = 2
  EXPECT_FALSE(RunRankedQA(qa, t).ok());
}

TEST(RankedQaTest, StuckRunIsNotAccepting) {
  // A one-child node has no applicable δ↓ (only arity 2 is defined).
  RankedQA qa = EvenAQAr({"a"});
  Tree t = tree::ChainTree(2, "a");
  auto run = RunRankedQA(qa, t);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->accepted);
  EXPECT_TRUE(run->selected.empty());
}

// ---------------------------------------------------------------------------
// Example 4.21: the superpolynomial blow-up automaton
// ---------------------------------------------------------------------------

TEST(BlowupQaTest, AcceptsCompleteBinaryTrees) {
  for (int32_t alpha : {1, 2}) {
    RankedQA qa = BlowupQAr(alpha);
    for (int32_t depth : {0, 1, 2, 3}) {
      Tree t = tree::CompleteBinaryTree(depth, "a");
      auto run = RunRankedQA(qa, t);
      ASSERT_TRUE(run.ok()) << "alpha=" << alpha << " depth=" << depth;
      EXPECT_TRUE(run->accepted);
      // Selection is an anytime notion: during the exponentially many
      // passes, every node carries the selected state q_{1,β+1} at some
      // configuration, including the root.
      EXPECT_TRUE(std::binary_search(run->selected.begin(),
                                     run->selected.end(), 0));
    }
  }
}

TEST(BlowupQaTest, StepCountGrowsSuperlinearly) {
  // Θ(((n+1)/2)^(α+1)) with α = 1: quadrupling per depth level (vs. tree
  // size only doubling).
  RankedQA qa = BlowupQAr(1);
  std::vector<int64_t> steps;
  for (int32_t depth : {2, 3, 4, 5}) {
    Tree t = tree::CompleteBinaryTree(depth, "a");
    auto run = RunRankedQA(qa, t);
    ASSERT_TRUE(run.ok());
    steps.push_back(run->steps);
  }
  for (size_t i = 1; i < steps.size(); ++i) {
    double ratio = static_cast<double>(steps[i]) / steps[i - 1];
    EXPECT_GT(ratio, 3.0) << "depth step " << i;  // → 4 asymptotically
    EXPECT_LT(ratio, 5.0);
  }
}

TEST(BlowupQaTest, StepLimitIsEnforced) {
  RankedQA qa = BlowupQAr(2);
  Tree t = tree::CompleteBinaryTree(6, "a");
  QaRunOptions opts;
  opts.max_steps = 1000;
  auto run = RunRankedQA(qa, t, opts);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), util::StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Theorem 4.11: QAr → monadic datalog
// ---------------------------------------------------------------------------

TEST(RankedTranslationTest, EvenAEquivalentToRunner) {
  RankedQA qa = EvenAQAr({"a", "b"});
  auto program = RankedQAToDatalog(qa);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(core::GroundableOverTree(*program));
  util::Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = tree::RandomFullBinaryTree(
        rng, static_cast<int32_t>(rng.Below(15)), {"a", "b"});
    auto run = RunRankedQA(qa, t);
    ASSERT_TRUE(run.ok());
    auto eval = core::EvaluateOnTree(*program, t, core::Engine::kGrounded);
    ASSERT_TRUE(eval.ok());
    EXPECT_EQ(eval->Query(), run->selected) << tree::ToDebugString(t);
  }
}

TEST(RankedTranslationTest, BlowupAutomatonMatchesRunner) {
  // The runner needs Θ(((n+1)/2)^(α+1)) steps; the translation evaluates
  // the same query via the grounded engine in linear time.
  RankedQA qa = BlowupQAr(1);
  auto program = RankedQAToDatalog(qa);
  ASSERT_TRUE(program.ok());
  for (int32_t depth : {1, 2, 3}) {
    Tree t = tree::CompleteBinaryTree(depth, "a");
    auto run = RunRankedQA(qa, t);
    ASSERT_TRUE(run.ok());
    auto eval = core::EvaluateOnTree(*program, t, core::Engine::kGrounded);
    ASSERT_TRUE(eval.ok());
    EXPECT_EQ(eval->Query(), run->selected) << "depth " << depth;
  }
}

TEST(RankedTranslationTest, EncodingSizeQuadraticInAutomaton) {
  // |P| = O(|A|²) — the complexity claim behind Example 4.21's O(β⁴·n).
  int64_t prev_atoms = 0;
  int64_t prev_size = 0;
  for (int32_t alpha : {1, 2}) {
    RankedQA qa = BlowupQAr(alpha);
    auto program = RankedQAToDatalog(qa);
    ASSERT_TRUE(program.ok());
    int64_t atoms = program->SizeInAtoms();
    int64_t size = qa.Size();
    if (prev_atoms > 0) {
      // |A| grows ~4x per alpha step; |P| must grow ~16x, not ~64x.
      double growth = static_cast<double>(atoms) / prev_atoms;
      double quad = std::pow(static_cast<double>(size) / prev_size, 2.0);
      EXPECT_LT(growth, quad * 4);
      EXPECT_GT(growth, quad / 4);
    }
    prev_atoms = atoms;
    prev_size = size;
  }
}

TEST(RankedTranslationTest, RejectsOnNonAcceptedTrees) {
  // Non-full binary trees make the run stuck -> nothing accepted/selected.
  RankedQA qa = EvenAQAr({"a"});
  auto program = RankedQAToDatalog(qa);
  ASSERT_TRUE(program.ok());
  Tree t = tree::ChainTree(3, "a");
  auto eval = core::EvaluateOnTree(*program, t, core::Engine::kGrounded);
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval->Query().empty());
  EXPECT_TRUE(eval->Unary(program->preds().Find("accept")).empty());
}

// ---------------------------------------------------------------------------
// Unranked SQAu (Definition 4.12)
// ---------------------------------------------------------------------------

TEST(UnrankedQaTest, EvenAMatchesDatalogReferenceOnUnrankedTrees) {
  UnrankedQA qa = EvenASQAu({"a", "b"});
  core::Program reference = core::EvenAProgram({"b"});
  util::Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(40)),
                              {"a", "b"});
    auto run = RunUnrankedQA(qa, t);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->accepted);
    auto ref = core::EvaluateOnTree(reference, t);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(run->selected, ref->Query()) << tree::ToDebugString(t);
  }
}

TEST(UnrankedQaTest, DownWordDensityOne) {
  UnrankedQA qa = OddPositionSQAu({"a"});
  // (q1 q0)* ∪ (q1 q0)* q1: lengths 0..5 all have exactly one word.
  for (int32_t m = 1; m <= 5; ++m) {
    auto word = qa.DownWord(0, "a", m);
    ASSERT_TRUE(word.ok()) << m;
    ASSERT_EQ(static_cast<int32_t>(word->size()), m);
    for (int32_t i = 0; i < m; ++i) {
      EXPECT_EQ((*word)[i], i % 2 == 0 ? 2 : 1) << "position " << i;
    }
  }
}

TEST(UnrankedQaTest, DensityViolationDetected) {
  UnrankedQA qa = OddPositionSQAu({"a"});
  // Add a conflicting word of length 1.
  qa.delta_down[{0, "a"}].push_back(UVW{{1}, {}, {}});
  EXPECT_FALSE(qa.DownWord(0, "a", 1).ok());
  // Length 2 is unaffected.
  EXPECT_TRUE(qa.DownWord(0, "a", 2).ok());
}

TEST(UnrankedQaTest, OddPositionSelection) {
  UnrankedQA qa = OddPositionSQAu({"a"});
  for (int32_t m : {1, 2, 3, 4, 7}) {
    Tree t = tree::ChildrenWord("a", std::vector<std::string>(m, "a"));
    auto run = RunUnrankedQA(qa, t);
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run->accepted) << m;
    std::vector<tree::NodeId> expected;
    for (int32_t i = 1; i <= m; i += 2) expected.push_back(i);
    EXPECT_EQ(run->selected, expected) << "m=" << m;
  }
}

TEST(UnrankedQaTest, UpDeterminismViolationDetected) {
  UnrankedQA qa = OddPositionSQAu({"a"});
  // A second up language accepting the same words.
  PairNfa clone = qa.delta_up[3];
  qa.num_states += 1;
  qa.delta_up[4] = clone;
  for (const std::string& l : {std::string("a")}) {
    qa.up_partition[{4, l}] = true;
  }
  Tree t = tree::ChildrenWord("a", {"a", "a"});
  auto run = RunUnrankedQA(qa, t);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(UnrankedQaTest, StayTransitionRemarksChildren) {
  UnrankedQA qa = StayOddPositionSQAu({"a", "b"});
  util::Rng rng(99);
  for (int32_t m : {1, 2, 3, 5, 8}) {
    std::vector<std::string> labels;
    for (int32_t i = 0; i < m; ++i) {
      labels.push_back(rng.Chance(1, 2) ? "a" : "b");
    }
    Tree t = tree::ChildrenWord("a", labels);
    QaRunOptions opts;
    opts.trace = true;
    auto run = RunUnrankedQA(qa, t, opts);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->accepted) << m;
    std::vector<tree::NodeId> expected;
    for (int32_t i = 1; i <= m; i += 2) expected.push_back(i);
    EXPECT_EQ(run->selected, expected) << "m=" << m;
    bool has_stay = false;
    for (const auto& step : run->trace) has_stay |= (step.kind == "stay");
    EXPECT_TRUE(has_stay);
  }
}

TEST(UnrankedQaTest, StayHappensAtMostOncePerNode) {
  UnrankedQA qa = StayOddPositionSQAu({"a"});
  Tree t = tree::ChildrenWord("a", {"a", "a", "a"});
  QaRunOptions opts;
  opts.trace = true;
  auto run = RunUnrankedQA(qa, t, opts);
  ASSERT_TRUE(run.ok());
  int32_t stays = 0;
  for (const auto& step : run->trace) {
    if (step.kind == "stay") ++stays;
  }
  EXPECT_EQ(stays, 1);
}

// ---------------------------------------------------------------------------
// Theorem 4.14: SQAu → monadic datalog (Figure 2 machinery)
// ---------------------------------------------------------------------------

void ExpectSqauTranslationMatchesRunner(const UnrankedQA& qa, const Tree& t) {
  auto program = UnrankedQAToDatalog(qa);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto run = RunUnrankedQA(qa, t);
  ASSERT_TRUE(run.ok());
  auto eval = core::EvaluateOnTree(*program, t);  // semi-naive (ext. schema)
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  EXPECT_EQ(eval->Query(), run->selected) << tree::ToDebugString(t);
  bool accept_derived =
      !eval->Unary(program->preds().Find("accept")).empty();
  EXPECT_EQ(accept_derived, run->accepted) << tree::ToDebugString(t);
}

TEST(UnrankedTranslationTest, EvenAOnRandomTrees) {
  UnrankedQA qa = EvenASQAu({"a", "b"});
  util::Rng rng(4242);
  for (int trial = 0; trial < 15; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(25)),
                              {"a", "b"});
    ExpectSqauTranslationMatchesRunner(qa, t);
  }
}

TEST(UnrankedTranslationTest, Figure2OddPositions) {
  // Example 4.15 / Figure 2: a node with four children; the first
  // subexpression (q1 q0)* matches, the second (q1 q0)* q1 does not.
  UnrankedQA qa = OddPositionSQAu({"a"});
  Tree t = tree::ChildrenWord("a", {"a", "a", "a", "a"});
  auto program = UnrankedQAToDatalog(qa);
  ASSERT_TRUE(program.ok());
  auto eval = core::EvaluateOnTree(*program, t);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->Query(), (std::vector<int32_t>{1, 3}));
  // succ of subexpression 0 derived, succ of subexpression 1 not.
  core::PredId succ0 = program->preds().Find("d0_a_0_s");
  core::PredId succ1 = program->preds().Find("d0_a_1_s");
  ASSERT_GE(succ0, 0);
  ASSERT_GE(succ1, 0);
  EXPECT_EQ(eval->Unary(succ0).size(), 4u);  // spread over all children
  EXPECT_TRUE(eval->Unary(succ1).empty());
}

TEST(UnrankedTranslationTest, OddPositionsOnWideTrees) {
  UnrankedQA qa = OddPositionSQAu({"a", "b"});
  util::Rng rng(11);
  for (int32_t m : {1, 2, 3, 6, 9}) {
    std::vector<std::string> labels;
    for (int32_t i = 0; i < m; ++i) {
      labels.push_back(rng.Chance(1, 2) ? "a" : "b");
    }
    ExpectSqauTranslationMatchesRunner(qa, tree::ChildrenWord("a", labels));
  }
}

TEST(UnrankedTranslationTest, StayAutomaton) {
  UnrankedQA qa = StayOddPositionSQAu({"a", "b"});
  util::Rng rng(13);
  for (int32_t m : {1, 2, 4, 7}) {
    std::vector<std::string> labels;
    for (int32_t i = 0; i < m; ++i) {
      labels.push_back(rng.Chance(1, 2) ? "a" : "b");
    }
    ExpectSqauTranslationMatchesRunner(qa, tree::ChildrenWord("a", labels));
  }
}

TEST(UnrankedTranslationTest, ComposesWithTmnfPipeline) {
  // SQAu → datalog (extended schema) → TMNF (τ_ur) → grounded evaluation.
  UnrankedQA qa = OddPositionSQAu({"a"});
  auto program = UnrankedQAToDatalog(qa);
  ASSERT_TRUE(program.ok());
  auto tmnf = tmnf::ToTmnf(*program);
  ASSERT_TRUE(tmnf.ok()) << tmnf.status().ToString();
  EXPECT_TRUE(core::GroundableOverTree(*tmnf));
  Tree t = tree::ChildrenWord("a", {"a", "a", "a", "a", "a"});
  auto eval = core::EvaluateOnTree(*tmnf, t, core::Engine::kGrounded);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->Query(), (std::vector<int32_t>{1, 3, 5}));
}

}  // namespace
}  // namespace mdatalog::qa
