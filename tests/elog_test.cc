#include <gtest/gtest.h>

#include "src/core/grounder.h"
#include "src/core/examples.h"
#include "src/core/parser.h"
#include "src/tmnf/pipeline.h"
#include "src/elog/ast.h"
#include "src/elog/eval.h"
#include "src/elog/from_datalog.h"
#include "src/elog/to_datalog.h"
#include "src/elog/visual.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/tree/generator.h"
#include "src/tree/serialize.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace mdatalog::elog {
namespace {

using tree::NodeId;
using tree::Tree;
using tree::TreeBuilder;

ElogProgram MustParseElog(const std::string& text) {
  auto p = ParseElog(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(*p);
}

// ---------------------------------------------------------------------------
// Paths and parsing
// ---------------------------------------------------------------------------

TEST(ElogPathTest, ParseAndPrint) {
  auto p = ElogPath::Parse("table._.tr");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->steps, (std::vector<std::string>{"table", "_", "tr"}));
  EXPECT_EQ(p->ToString(), "table._.tr");
  auto eps = ElogPath::Parse("");
  ASSERT_TRUE(eps.ok());
  EXPECT_TRUE(eps->empty());
  EXPECT_FALSE(ElogPath::Parse("a..b").ok());
}

TEST(ElogParseTest, BasicWrapper) {
  ElogProgram p = MustParseElog(R"(
    % a two-pattern wrapper
    item(X)  <- root(R), subelem(R, "table.tr", X).
    price(Y) <- item(X), subelem(X, "td", Y), lastsibling(Y).
  )");
  ASSERT_EQ(p.rules().size(), 2u);
  EXPECT_EQ(p.rules()[0].head_pattern, "item");
  EXPECT_EQ(p.rules()[0].subelem.ToString(), "table.tr");
  EXPECT_EQ(p.rules()[1].conditions.size(), 1u);
  EXPECT_EQ(p.Patterns(), (std::vector<std::string>{"item", "price"}));
  EXPECT_FALSE(p.UsesDeltaBuiltins());
}

TEST(ElogParseTest, SpecializationRule) {
  ElogProgram p = MustParseElog(
      "a(X) <- root(R), subelem(R, \"x\", X).\n"
      "b(X) <- a(X), leaf(X).\n");
  EXPECT_TRUE(p.rules()[1].is_specialization());
}

TEST(ElogParseTest, DeltaBuiltins) {
  ElogProgram p = MustParseElog(
      "a0(X) <- root(R), subelem(R, \"a\", X), notafter(R, \"a\", X).\n"
      "anbn(X) <- root(X), contains(X, \"a\", Y), a0(Y), "
      "before(X, \"b\", Y, Z, 50, 50), lastsibling(Z).\n");
  EXPECT_TRUE(p.UsesDeltaBuiltins());
  const ElogCondition& before = p.rules()[1].conditions[2];
  EXPECT_EQ(before.alpha_pct, 50);
  EXPECT_EQ(before.beta_pct, 50);
}

TEST(ElogParseTest, RoundTrip) {
  const char* text =
      "item(X) <- root(R), subelem(R, \"table.tr\", X), lastsibling(X).\n";
  ElogProgram p1 = MustParseElog(text);
  ElogProgram p2 = MustParseElog(ToString(p1));
  EXPECT_EQ(ToString(p1), ToString(p2));
}

TEST(ElogValidateTest, RejectsIllFormedRules) {
  // Subelem from a variable that is not the parent variable.
  EXPECT_FALSE(
      ParseElog("p(X) <- root(R), subelem(Q, \"a\", X).").ok());
  // Disconnected condition variable.
  EXPECT_FALSE(
      ParseElog("p(X) <- root(R), subelem(R, \"a\", X), leaf(Z).").ok());
  // Head pattern named root.
  EXPECT_FALSE(ParseElog("root(X) <- root(R), subelem(R, \"a\", X).").ok());
  // Missing final dot.
  EXPECT_FALSE(ParseElog("p(X) <- root(R), subelem(R, \"a\", X)").ok());
}

// ---------------------------------------------------------------------------
// PathTargets and native evaluation
// ---------------------------------------------------------------------------

TEST(PathTargetsTest, WildcardsAndLabels) {
  // a(b(c,d), e(c))
  TreeBuilder b;
  NodeId r = b.Root("a");
  NodeId n1 = b.Child(r, "b");
  b.Child(n1, "c");
  b.Child(n1, "d");
  NodeId n4 = b.Child(r, "e");
  b.Child(n4, "c");
  Tree t = b.Build();
  auto targets = [&](const char* path) {
    return PathTargets(t, t.root(), *ElogPath::Parse(path));
  };
  EXPECT_EQ(targets("b"), (std::vector<NodeId>{1}));
  EXPECT_EQ(targets("_"), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(targets("_.c"), (std::vector<NodeId>{2, 5}));
  EXPECT_EQ(targets("b.c"), (std::vector<NodeId>{2}));
  EXPECT_EQ(targets("z"), (std::vector<NodeId>{}));
  EXPECT_EQ(targets(""), (std::vector<NodeId>{0}));
}

TEST(ElogEvalTest, WrapperOnHandBuiltTree) {
  // page(list(item,item,item))
  TreeBuilder b;
  NodeId r = b.Root("page");
  NodeId list = b.Child(r, "list");
  b.Child(list, "item");
  b.Child(list, "item");
  b.Child(list, "item");
  Tree t = b.Build();
  ElogProgram p = MustParseElog(
      "entry(X) <- root(R), subelem(R, \"list.item\", X).\n"
      "last(X) <- entry(X), lastsibling(X).\n"
      "notlast(X) <- entry(X), nextsibling(X, Y).\n");
  auto result = EvaluateElog(p, t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Of("entry"), (std::vector<NodeId>{2, 3, 4}));
  EXPECT_EQ(result->Of("last"), (std::vector<NodeId>{4}));
  EXPECT_EQ(result->Of("notlast"), (std::vector<NodeId>{2, 3}));
}

TEST(ElogEvalTest, RecursivePattern) {
  // All descendants via the recursive dom idiom.
  util::Rng rng(4);
  Tree t = tree::RandomTree(rng, 20, {"a", "b"});
  ElogProgram p = MustParseElog(
      "anynode(X) <- root(X).\n"
      "anynode(X) <- anynode(P), subelem(P, \"_\", X).\n");
  auto result = EvaluateElog(p, t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<int32_t>(result->Of("anynode").size()), t.size());
}

TEST(ElogEvalTest, ContainsAndPatternRefs) {
  // Select items that contain a "sale" marker somewhere two levels down.
  TreeBuilder b;
  NodeId r = b.Root("shop");
  NodeId i1 = b.Child(r, "item");
  NodeId w1 = b.Child(i1, "wrap");
  b.Child(w1, "sale");
  NodeId i2 = b.Child(r, "item");
  b.Child(i2, "wrap");
  Tree t = b.Build();
  ElogProgram p = MustParseElog(
      "item(X) <- root(R), subelem(R, \"item\", X).\n"
      "sale(X) <- item(X), contains(X, \"wrap.sale\", Y).\n");
  auto result = EvaluateElog(p, t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Of("item"), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(result->Of("sale"), (std::vector<NodeId>{1}));
}

// ---------------------------------------------------------------------------
// Theorem 6.5, easy direction: Elog⁻ → monadic datalog
// ---------------------------------------------------------------------------

void ExpectElogMatchesDatalog(const ElogProgram& p, const Tree& t) {
  auto native = EvaluateElog(p, t);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  auto datalog = ElogToDatalog(p);
  ASSERT_TRUE(datalog.ok()) << datalog.status().ToString();
  auto eval = core::EvaluateOnTree(*datalog, t);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  for (const std::string& pattern : p.Patterns()) {
    core::PredId pred = datalog->preds().Find("pat_" + pattern);
    ASSERT_GE(pred, 0) << pattern;
    EXPECT_EQ(eval->Unary(pred), native->Of(pattern))
        << pattern << " on " << tree::ToDebugString(t);
  }
}

TEST(ElogToDatalogTest, MatchesNativeEvaluation) {
  util::Rng rng(2026);
  ElogProgram p = MustParseElog(
      "entry(X) <- root(R), subelem(R, \"_.item\", X).\n"
      "deep(X) <- entry(X), contains(X, \"_._\", Y).\n"
      "first(X) <- entry(X), firstsibling(X).\n"
      "follower(X) <- root(R), subelem(R, \"_._\", X), "
      "nextsibling(Y, X), first(Y).\n"
      "leafentry(X) <- entry(X), leaf(X).\n");
  for (int trial = 0; trial < 12; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(40)),
                              {"item", "a", "b"});
    ExpectElogMatchesDatalog(p, t);
  }
}

TEST(ElogToDatalogTest, RecursiveWrapper) {
  util::Rng rng(31);
  ElogProgram p = MustParseElog(
      "anynode(X) <- root(X).\n"
      "anynode(X) <- anynode(P), subelem(P, \"_\", X).\n"
      "aleaf(X) <- anynode(X), leaf(X).\n");
  for (int trial = 0; trial < 8; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(25)),
                              {"a", "b"});
    ExpectElogMatchesDatalog(p, t);
  }
}

TEST(ElogToDatalogTest, RejectsDeltaBuiltins) {
  ElogProgram p = MustParseElog(
      "a0(X) <- root(R), subelem(R, \"a\", X), notafter(R, \"a\", X).\n");
  EXPECT_FALSE(ElogToDatalog(p).ok());
}

TEST(ElogToDatalogTest, Corollary64GroundableAfterTmnf) {
  // Elog⁻ → datalog over τ_ur ∪ {child} → TMNF → linear grounded engine:
  // the Corollary 6.4 evaluation path.
  ElogProgram p = MustParseElog(
      "entry(X) <- root(R), subelem(R, \"list.item\", X).\n"
      "last(X) <- entry(X), lastsibling(X).\n");
  auto datalog = ElogToDatalog(p, "last");
  ASSERT_TRUE(datalog.ok());
  auto tmnf = ::mdatalog::tmnf::ToTmnf(*datalog);
  ASSERT_TRUE(tmnf.ok()) << tmnf.status().ToString();
  EXPECT_TRUE(core::GroundableOverTree(*tmnf));

  TreeBuilder b;
  NodeId r = b.Root("page");
  NodeId list = b.Child(r, "list");
  b.Child(list, "item");
  b.Child(list, "item");
  Tree t = b.Build();
  auto eval = core::EvaluateOnTree(*tmnf, t, core::Engine::kGrounded);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->Query(), (std::vector<int32_t>{3}));
}

// ---------------------------------------------------------------------------
// Theorem 6.5, hard direction: monadic datalog → Elog⁻
// ---------------------------------------------------------------------------

void ExpectDatalogMatchesElog(const core::Program& program, const Tree& t) {
  auto elog = DatalogToElog(program);
  ASSERT_TRUE(elog.ok()) << elog.status().ToString();
  auto native = EvaluateElog(*elog, t);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  auto reference = core::EvaluateOnTree(program, t);
  ASSERT_TRUE(reference.ok());
  std::vector<bool> intensional = program.IntensionalMask();
  for (core::PredId q = 0; q < program.preds().size(); ++q) {
    if (!intensional[q] || program.preds().Arity(q) != 1) continue;
    EXPECT_EQ(native->Of(program.preds().Name(q)), reference->Unary(q))
        << program.preds().Name(q) << " on " << tree::ToDebugString(t)
        << "\nElog:\n" << ToString(*elog);
  }
}

TEST(DatalogToElogTest, RoundTripOnTestCorpus) {
  // Trees get a dedicated root label "r" that no program tests, sidestepping
  // the construction's documented root-label corner.
  util::Rng rng(606);
  const char* programs[] = {
      "q(X) :- leaf(X), label_a(X).",
      "q(X) :- firstchild(X0, X), label_b(X0).",
      "q(X) :- child(X, Y), label_a(Y).",
      "q(X) :- q2(X), lastsibling(X).\nq2(X) :- label_a(X).",
      "q(Y) :- q2(X), nextsibling(X, Y).\nq2(X) :- firstsibling(X), "
      "label_b(X).",
      "q(X) :- root(X).",
  };
  for (const char* text : programs) {
    auto program = core::ParseProgram(text);
    ASSERT_TRUE(program.ok());
    for (int trial = 0; trial < 8; ++trial) {
      tree::TreeBuilder b;
      b.Root("r");
      Tree inner = tree::RandomTree(rng,
                                    1 + static_cast<int32_t>(rng.Below(18)),
                                    {"a", "b"});
      // Graft the random tree under the fixed-label root.
      std::function<void(const Tree&, NodeId, NodeId)> graft =
          [&](const Tree& src, NodeId s, NodeId dst) {
            NodeId built = b.Child(dst, src.label_name(s));
            for (NodeId c = src.first_child(s); c != tree::kNoNode;
                 c = src.next_sibling(c)) {
              graft(src, c, built);
            }
          };
      graft(inner, inner.root(), 0);
      Tree t = b.Build();
      ExpectDatalogMatchesElog(*program, t);
    }
  }
}

TEST(DatalogToElogTest, EvenAProgramRoundTrip) {
  util::Rng rng(77);
  // Σ − {a} = {b} only: the root label "r" stays outside the program's
  // alphabet, so neither side tests the root's own label (the Theorem 6.5
  // construction cannot — see RootLabelCaveatIsDocumentedBehavior).
  core::Program even_a = core::EvenAProgram({"b"});
  for (int trial = 0; trial < 6; ++trial) {
    tree::TreeBuilder b;
    b.Root("r");
    Tree inner = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(14)),
                                  {"a", "b"});
    std::function<void(const Tree&, NodeId, NodeId)> graft =
        [&](const Tree& src, NodeId s, NodeId dst) {
          NodeId built = b.Child(dst, src.label_name(s));
          for (NodeId c = src.first_child(s); c != tree::kNoNode;
               c = src.next_sibling(c)) {
            graft(src, c, built);
          }
        };
    graft(inner, inner.root(), 0);
    ExpectDatalogMatchesElog(even_a, b.Build());
  }
}

TEST(DatalogToElogTest, RootLabelCaveatIsDocumentedBehavior) {
  // The Theorem 6.5 construction cannot test the *root's own* label: a
  // label_a test compiles to a subelem step, and the root is nobody's child.
  auto program = core::ParseProgram("q(X) :- label_a(X).");
  ASSERT_TRUE(program.ok());
  auto elog = DatalogToElog(*program);
  ASSERT_TRUE(elog.ok());
  Tree t = tree::ChildrenWord("a", {"a", "b"});  // root labeled a!
  auto native = EvaluateElog(*elog, t);
  ASSERT_TRUE(native.ok());
  auto reference = core::EvaluateOnTree(*program, t);
  ASSERT_TRUE(reference.ok());
  // Datalog selects {0, 1}; Elog misses the root.
  EXPECT_EQ(reference->Unary(program->preds().Find("q")),
            (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(native->Of("q"), (std::vector<NodeId>{1}));
}

// ---------------------------------------------------------------------------
// Theorem 6.6: Elog⁻Δ accepts exactly aⁿbⁿ
// ---------------------------------------------------------------------------

ElogProgram AnBnProgram() {
  return MustParseElog(
      "a0(X) <- root(R), subelem(R, \"a\", X), notafter(R, \"a\", X).\n"
      "b0(X) <- root(R), subelem(R, \"b\", X), notafter(R, \"b\", X), "
      "notbefore(R, \"a\", X).\n"
      "anbn(X) <- root(X), contains(X, \"a\", Y), a0(Y), "
      "before(X, \"b\", Y, Z, 50, 50), b0(Z).\n");
}

TEST(AnBnTest, AcceptsExactlyEqualCounts) {
  ElogProgram p = AnBnProgram();
  for (int32_t n = 1; n <= 8; ++n) {
    for (int32_t m = 1; m <= 8; ++m) {
      std::vector<std::string> word;
      for (int32_t i = 0; i < n; ++i) word.push_back("a");
      for (int32_t i = 0; i < m; ++i) word.push_back("b");
      Tree t = tree::ChildrenWord("r", word);
      auto result = EvaluateElog(p, t);
      ASSERT_TRUE(result.ok());
      bool accepted = !result->Of("anbn").empty();
      EXPECT_EQ(accepted, n == m) << "a^" << n << " b^" << m;
    }
  }
}

TEST(AnBnTest, RejectsShuffledWords) {
  ElogProgram p = AnBnProgram();
  for (const std::vector<std::string>& word :
       {std::vector<std::string>{"a", "b", "a", "b"},
        std::vector<std::string>{"b", "b", "a", "a"},
        std::vector<std::string>{"a", "b", "b", "a"},
        std::vector<std::string>{"b", "a"}}) {
    Tree t = tree::ChildrenWord("r", word);
    auto result = EvaluateElog(p, t);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->Of("anbn").empty());
  }
}

TEST(AnBnTest, BeyondMsoWitness) {
  // The same query has no Elog⁻/datalog counterpart: translation refuses.
  EXPECT_FALSE(ElogToDatalog(AnBnProgram()).ok());
}

// ---------------------------------------------------------------------------
// Visual wrapper specification (Section 6.2)
// ---------------------------------------------------------------------------

TEST(VisualTest, BuildCatalogWrapperByClicks) {
  util::Rng rng(1);
  html::CatalogOptions opts;
  opts.num_items = 5;
  auto doc = html::ParseHtml(html::ProductCatalogPage(rng, opts));
  ASSERT_TRUE(doc.ok());
  // Use class-projected labels so item rows are distinguishable (Remark 2.2).
  Tree t = html::ProjectAttributeIntoLabels(*doc, "class");

  VisualSession session(t);
  EXPECT_EQ(session.Patterns(), (std::vector<std::string>{"root"}));

  // "Click" the second item row: find it in the tree.
  NodeId item_row = tree::kNoNode;
  int32_t seen = 0;
  for (NodeId n = 0; n < t.size(); ++n) {
    if (t.label_name(n) == "tr@item" && ++seen == 2) item_row = n;
  }
  ASSERT_NE(item_row, tree::kNoNode);
  auto rule = session.SelectNode("item", "root", t.root(), item_row);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();

  // The inferred rule generalizes to all 5 item rows immediately (fixed
  // path, same location).
  auto items = session.MatchesOf("item");
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->size(), 5u);

  // Click the price cell inside the first item instance.
  NodeId first_item = (*items)[0];
  NodeId price_cell = tree::kNoNode;
  for (NodeId c = t.first_child(first_item); c != tree::kNoNode;
       c = t.next_sibling(c)) {
    if (t.label_name(c) == "td@price") price_cell = c;
  }
  ASSERT_NE(price_cell, tree::kNoNode);
  auto price_rule = session.SelectNode("price", "item", first_item,
                                       price_cell);
  ASSERT_TRUE(price_rule.ok());
  auto prices = session.MatchesOf("price");
  ASSERT_TRUE(prices.ok());
  EXPECT_EQ(prices->size(), 5u);
}

TEST(VisualTest, GeneralizationSurvivesLayoutChange) {
  util::Rng rng(2);
  html::CatalogOptions opts;
  opts.num_items = 4;
  auto doc = html::ParseHtml(html::ProductCatalogPage(rng, opts));
  ASSERT_TRUE(doc.ok());
  Tree t = html::ProjectAttributeIntoLabels(*doc, "class");

  VisualSession session(t);
  NodeId item_row = tree::kNoNode;
  for (NodeId n = 0; n < t.size(); ++n) {
    if (t.label_name(n) == "tr@item") {
      item_row = n;
      break;
    }
  }
  ASSERT_NE(item_row, tree::kNoNode);
  auto rule = session.SelectNode("item", "root", t.root(), item_row);
  ASSERT_TRUE(rule.ok());
  // Generalize every structural step except the final "tr@item" to "_": the
  // wrapper no longer depends on the page skeleton.
  const ElogRule& r = session.program().rules()[*rule];
  for (int32_t i = 0;
       i + 1 < static_cast<int32_t>(r.subelem.steps.size()); ++i) {
    ASSERT_TRUE(session.GeneralizeStep(*rule, i).ok());
  }

  // Same wrapper on the *alternative layout* page (extra wrapper div):
  html::CatalogOptions alt = opts;
  alt.alt_layout = true;
  auto alt_doc = html::ParseHtml(html::ProductCatalogPage(rng, alt));
  ASSERT_TRUE(alt_doc.ok());
  Tree alt_tree = html::ProjectAttributeIntoLabels(*alt_doc, "class");
  // The generalized path has a fixed depth; the alt layout adds one level,
  // so robust wrapping needs the recursive idiom — build it:
  ElogProgram robust = MustParseElog(
      "anynode(X) <- root(X).\n"
      "anynode(X) <- anynode(P), subelem(P, \"_\", X).\n"
      "item(X) <- anynode(P), subelem(P, \"tr@item\", X).\n");
  auto on_orig = EvaluateElog(robust, t);
  auto on_alt = EvaluateElog(robust, alt_tree);
  ASSERT_TRUE(on_orig.ok());
  ASSERT_TRUE(on_alt.ok());
  EXPECT_EQ(on_orig->Of("item").size(), 4u);
  EXPECT_EQ(on_alt->Of("item").size(), 4u);
}

TEST(VisualTest, SelectNodeValidatesInputs) {
  Tree t = tree::ChildrenWord("r", {"a", "b"});
  VisualSession session(t);
  // Parent instance not matching the pattern.
  EXPECT_FALSE(session.SelectNode("p", "root", 1, 2).ok());
  // Target outside the parent instance.
  EXPECT_FALSE(session.SelectNode("p", "root", 0, 0).ok());
  // Unknown parent pattern.
  EXPECT_FALSE(session.SelectNode("p", "nope", 0, 1).ok());
}

// ---------------------------------------------------------------------------
// Wrapper output trees
// ---------------------------------------------------------------------------

TEST(WrapperTest, OutputTreePreservesHierarchyAndOrder) {
  util::Rng rng(3);
  html::CatalogOptions opts;
  opts.num_items = 3;
  std::string page = html::ProductCatalogPage(rng, opts);
  auto doc = html::ParseHtml(page);
  ASSERT_TRUE(doc.ok());
  Tree t = html::ProjectAttributeIntoLabels(*doc, "class");

  wrapper::Wrapper w;
  w.program = MustParseElog(
      "anynode(X) <- root(X).\n"
      "anynode(X) <- anynode(P), subelem(P, \"_\", X).\n"
      "item(X) <- anynode(P), subelem(P, \"tr@item\", X).\n"
      "name(Y) <- item(X), subelem(X, \"td@name\", Y).\n"
      "price(Y) <- item(X), subelem(X, \"td@price\", Y).\n");
  w.extraction_patterns = {"item", "name", "price"};

  auto out = wrapper::WrapTree(w, t);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->label_name(out->root()), "result");
  std::vector<NodeId> items = out->Children(out->root());
  ASSERT_EQ(items.size(), 3u);
  for (NodeId item : items) {
    EXPECT_EQ(out->label_name(item), "item");
    std::vector<NodeId> fields = out->Children(item);
    ASSERT_EQ(fields.size(), 2u);
    EXPECT_EQ(out->label_name(fields[0]), "name");
    EXPECT_EQ(out->label_name(fields[1]), "price");
    // Price leaves carry the cell text.
    EXPECT_FALSE(out->text(fields[1]).empty());
    EXPECT_EQ(out->text(fields[1])[0], '$');
  }
}

TEST(WrapperTest, EndToEndHtmlToXml) {
  wrapper::Wrapper w;
  w.program = MustParseElog(
      "entry(X) <- root(R), subelem(R, \"body.ul.li\", X).\n");
  w.extraction_patterns = {"entry"};
  auto xml = wrapper::WrapHtmlToXml(
      w, "<html><body><ul><li>one<li>two</ul></body></html>");
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  EXPECT_NE(xml->find("<entry>one</entry>"), std::string::npos);
  EXPECT_NE(xml->find("<entry>two</entry>"), std::string::npos);
}

TEST(WrapperTest, NodeWithMultiplePatternsNests) {
  Tree t = tree::ChildrenWord("r", {"a"});
  wrapper::Wrapper w;
  w.program = MustParseElog(
      "x(X) <- root(R), subelem(R, \"a\", X).\n"
      "y(X) <- x(X), leaf(X).\n");
  w.extraction_patterns = {"x", "y"};
  auto out = wrapper::WrapTree(w, t);
  ASSERT_TRUE(out.ok());
  // result > x > y (same input node, nested by pattern order).
  EXPECT_EQ(tree::ToDebugString(*out), "result(x(y))");
}

}  // namespace
}  // namespace mdatalog::elog
