// TinyLFU admission (runtime/admission.{h,cc}): the frequency sketch must
// rank repeat traffic above one-hit traffic, saturate, age, and drive the
// Admit decision that gives the serving caches their scan resistance.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/runtime/admission.h"
#include "src/runtime/document_cache.h"

namespace {

using namespace mdatalog;

uint64_t KeyHash(const std::string& s) { return runtime::HashBytes(s); }

TEST(FrequencySketchTest, UnseenKeyEstimatesZero) {
  runtime::FrequencySketch sketch(1024);
  EXPECT_EQ(sketch.EstimateFrequency(KeyHash("never seen")), 0);
}

TEST(FrequencySketchTest, OneHitKeyStopsAtTheDoorkeeper) {
  runtime::FrequencySketch sketch(1024);
  sketch.RecordAccess(KeyHash("one hit"));
  // First sighting marks the doorkeeper only: estimate 1, counters untouched.
  EXPECT_EQ(sketch.EstimateFrequency(KeyHash("one hit")), 1);
}

TEST(FrequencySketchTest, RepeatAccessesRankAboveOneHitTraffic) {
  runtime::FrequencySketch sketch(4096);
  const uint64_t hot = KeyHash("hot page");
  for (int i = 0; i < 10; ++i) sketch.RecordAccess(hot);
  // Background of one-hit wonders (the scan workload).
  for (int i = 0; i < 200; ++i) {
    sketch.RecordAccess(KeyHash("cold " + std::to_string(i)));
  }
  const int32_t hot_freq = sketch.EstimateFrequency(hot);
  EXPECT_GE(hot_freq, 8);  // ~10, modulo sketch collisions
  for (int i = 0; i < 200; i += 17) {
    EXPECT_LT(sketch.EstimateFrequency(KeyHash("cold " + std::to_string(i))),
              hot_freq);
  }
}

TEST(FrequencySketchTest, CountersSaturate) {
  runtime::FrequencySketch sketch(1024);
  const uint64_t key = KeyHash("very hot");
  for (int i = 0; i < 1000; ++i) sketch.RecordAccess(key);
  // 4-bit counters cap at 15, +1 for the doorkeeper.
  EXPECT_LE(sketch.EstimateFrequency(key), 16);
  EXPECT_GE(sketch.EstimateFrequency(key), 15);
}

TEST(FrequencySketchTest, AgingHalvesTheWindow) {
  runtime::FrequencySketch sketch(1024);
  const uint64_t hot = KeyHash("aging hot");
  for (int i = 0; i < 100; ++i) sketch.RecordAccess(hot);
  const int32_t before = sketch.EstimateFrequency(hot);
  // Push total samples past the aging threshold with distinct filler keys.
  const int64_t period = sketch.sample_period();
  for (int64_t i = 0; sketch.samples() < period - 1; ++i) {
    sketch.RecordAccess(KeyHash("filler " + std::to_string(i)));
  }
  sketch.RecordAccess(KeyHash("the straw"));  // crosses the threshold: Age()
  const int32_t after = sketch.EstimateFrequency(hot);
  EXPECT_LT(after, before);
  EXPECT_GE(after, before / 2 - 2);  // halved, doorkeeper cleared
}

TEST(TinyLfuAdmissionTest, AdmitsOnlyStrictlyMorePopularCandidates) {
  runtime::TinyLfuAdmission lfu(1024);
  const uint64_t hot = KeyHash("resident hot");
  const uint64_t cold_candidate = KeyHash("cold candidate");
  const uint64_t cold_resident = KeyHash("cold resident");
  const uint64_t warm_candidate = KeyHash("warm candidate");
  for (int i = 0; i < 10; ++i) lfu.RecordAccess(hot);
  lfu.RecordAccess(cold_candidate);
  lfu.RecordAccess(cold_resident);
  for (int i = 0; i < 20; ++i) lfu.RecordAccess(warm_candidate);

  // A one-hit candidate never displaces the hot resident.
  EXPECT_FALSE(lfu.Admit(cold_candidate, hot));
  // A hotter candidate does.
  EXPECT_TRUE(lfu.Admit(warm_candidate, hot));
  // Ties reject: equally-cold keys must not rotate the cache.
  EXPECT_FALSE(lfu.Admit(cold_candidate, cold_resident));
}

}  // namespace
