// The streaming front: SAX-style incremental tokenization, chunked tree
// growth and semi-naive delta rounds (src/stream/). The load-bearing
// invariant — pinned here as a differential property test — is that for
// every input under every chunking (whole page, one byte at a time, random
// boundaries, adversarial mid-tag / mid-attribute / mid-entity splits) the
// streaming session's Finish() XML is byte-identical to batch
// WrapperRuntime::Wrap on the concatenated bytes, under every engine mode,
// and the results emitted before EOF are exactly the batch extents.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/elog/ast.h"
#include "src/elog/eval.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/html/tokenizer.h"
#include "src/runtime/runtime.h"
#include "src/stream/stream_session.h"
#include "src/tree/serialize.h"
#include "src/tree/tree.h"
#include "src/util/deadline.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

wrapper::Wrapper CatalogWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  EXPECT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};
  return w;
}

wrapper::Wrapper BoardWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    litem(X) <- anynode(P), subelem(P, "li", X).
    deepleaf(X) <- litem(X), leaf(X).
  )");
  EXPECT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"litem", "deepleaf"};
  return w;
}

/// Raw-label wrapper for the handcrafted fragments: divs, list items and
/// last-sibling leaves — exercises label, join and tc-walk rule shapes.
wrapper::Wrapper GenericWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    adiv(X) <- anynode(P), subelem(P, "div", X).
    litem(X) <- anynode(P), subelem(P, "li", X).
    lastleaf(X) <- anynode(P), subelem(P, "_", X), leaf(X), lastsibling(X).
  )");
  EXPECT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"adiv", "litem", "lastleaf"};
  return w;
}

/// Elog⁻Δ (notafter has no datalog translation): forces the session's
/// batch-evaluation fallback while parsing still streams.
wrapper::Wrapper DeltaWrapper() {
  auto program = elog::ParseElog(
      "a0(X) <- root(R), subelem(R, \"a\", X), notafter(R, \"a\", X).\n");
  EXPECT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"a0"};
  return w;
}

std::string CatalogPage(uint64_t seed, int32_t items) {
  util::Rng rng(seed);
  html::CatalogOptions opts;
  opts.num_items = items;
  opts.with_ads = true;
  return html::ProductCatalogPage(rng, opts);
}

std::string BoardPage(uint64_t seed, int32_t depth, int32_t fanout) {
  util::Rng rng(seed);
  return html::NestedBoardPage(rng, depth, fanout);
}

/// Parser stress fragments: auto-close chains, entities, raw-text elements,
/// comments and doctype, unmatched end tags, void / self-closing elements,
/// multiple top-level nodes (root kept) and single roots (root stripped).
const std::vector<std::string>& NastyPages() {
  static const std::vector<std::string> pages = {
      "<html><body><ul><li>a<li>b &amp; c<li>d</ul></body></html>",
      "<p>first<p>second<hr><p>third",
      R"(leading text<div class="x"><span>mid</span></div>trailing)",
      "<!DOCTYPE html><!-- note --><div><script>if(a<b){x=\"</div>\";}"
      "</script><em>t</em></div>",
      R"(<table><tr class=item><td class=price>1 &lt; 2</td><td>x</td>)"
      R"(<tr class=item><td class=price>3</td></table>)",
      "<div><p>unclosed<div>nested</div>",
      "<a/><br><img src=x><b>bold</b>",
      "justtext",
      "<div>&unknown; &amp;&#65;</div>",
      "<ul><li><ul><li>deep</ul></li></ul>",
      "<div>a<!-- c1 --><style>p { color: red }</style>b</div>",
      "<li>top-level-li<li>another",
  };
  return pages;
}

// ---------------------------------------------------------------------------
// Chunkings
// ---------------------------------------------------------------------------

std::vector<std::string> FixedChunks(const std::string& page, size_t n) {
  std::vector<std::string> out;
  for (size_t i = 0; i < page.size(); i += n) {
    out.push_back(page.substr(i, n));
  }
  return out;
}

std::vector<std::string> RandomChunks(const std::string& page, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::string> out;
  size_t i = 0;
  while (i < page.size()) {
    const size_t n = 1 + rng.Below(17);
    out.push_back(page.substr(i, n));
    i += n;
  }
  return out;
}

/// Splits one byte after every occurrence of a sensitive byte: every tag,
/// attribute, quoted value, entity and comment ends up cut mid-construct.
std::vector<std::string> AdversarialChunks(const std::string& page) {
  static const std::string kSensitive = "<>&\"'=!-;";
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i < page.size(); ++i) {
    if (kSensitive.find(page[i]) != std::string::npos) {
      out.push_back(page.substr(start, i + 1 - start));
      start = i + 1;
    }
  }
  if (start < page.size()) out.push_back(page.substr(start));
  return out;
}

/// Every chunking a page is pushed through. `small` adds the quadratic-cost
/// one-byte chunking (reserved for short pages).
std::vector<std::vector<std::string>> Chunkings(const std::string& page,
                                                uint64_t seed, bool small) {
  std::vector<std::vector<std::string>> out;
  out.push_back({page});
  out.push_back(FixedChunks(page, 7));
  out.push_back(RandomChunks(page, seed));
  out.push_back(RandomChunks(page, seed + 1));
  out.push_back(AdversarialChunks(page));
  if (small) out.push_back(FixedChunks(page, 1));
  return out;
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

std::string TokenSig(const std::vector<html::Token>& tokens) {
  std::string sig;
  for (const html::Token& t : tokens) {
    sig += std::to_string(static_cast<int>(t.type));
    sig += '|';
    sig += t.data;
    for (const html::Attribute& a : t.attrs) {
      sig += '[' + a.name + '=' + a.value + ']';
    }
    if (t.self_closing) sig += "/";
    sig += '\n';
  }
  return sig;
}

std::string StrCat(const std::vector<std::string>& chunks) {
  std::string out;
  for (const std::string& c : chunks) out += c;
  return out;
}

/// Batch XML under one engine mode, via the full runtime (caches and all).
util::Result<std::string> BatchXml(runtime::RuntimeOptions::EngineMode mode,
                                   const wrapper::Wrapper& w,
                                   const std::string& attr,
                                   const std::string& page) {
  runtime::RuntimeOptions options;
  options.engine = mode;
  runtime::WrapperRuntime rt(options);
  auto handle = rt.Register(w, attr);
  EXPECT_TRUE(handle.ok());
  return rt.Wrap(*handle, page);
}

/// The expected extraction extents (external node ids) via the native
/// evaluator over the batch-parsed, batch-projected tree.
std::set<std::pair<std::string, tree::NodeId>> BatchExtents(
    const wrapper::Wrapper& w, const std::string& attr,
    const std::string& page) {
  std::set<std::pair<std::string, tree::NodeId>> out;
  auto doc = html::ParseHtml(page);
  if (!doc.ok()) return out;
  tree::Tree projected = attr.empty()
                             ? doc->tree()
                             : html::ProjectAttributeIntoLabels(*doc, attr);
  auto result = elog::EvaluateElog(w.program, projected);
  EXPECT_TRUE(result.ok());
  for (const std::string& pattern : w.extraction_patterns) {
    const auto it = result->matches.find(pattern);
    if (it == result->matches.end()) continue;
    for (const tree::NodeId n : it->second) out.emplace(pattern, n);
  }
  return out;
}

/// Streams `chunks` through a fresh session and checks every streaming
/// invariant against the batch oracles.
void CheckOneChunking(runtime::WrapperRuntime& rt,
                      const runtime::WrapperHandle& handle,
                      const std::vector<std::string>& chunks,
                      const std::string& expected_xml,
                      const std::set<std::pair<std::string, tree::NodeId>>&
                          expected_extents,
                      const std::string& context) {
  std::vector<stream::StreamResult> emitted;
  stream::StreamOptions options;
  options.on_result = [&emitted](const stream::StreamResult& r) {
    emitted.push_back(r);
  };
  auto session = rt.SubmitStream({.wrapper = handle}, std::move(options));
  ASSERT_TRUE(session.ok()) << context;
  for (const std::string& chunk : chunks) {
    ASSERT_TRUE((*session)->Feed(chunk).ok()) << context;
  }
  auto xml = (*session)->Finish();
  ASSERT_TRUE(xml.ok()) << context << ": " << xml.status().ToString();
  EXPECT_EQ(*xml, expected_xml) << context;

  // The emitted results are exactly the batch extents: same (pattern, node)
  // set after resolving the provisional ids, no duplicates, and final
  // label/text payloads.
  const tree::NodeId shift = (*session)->stripped() ? 1 : 0;
  auto doc = html::ParseHtml(StrCat(chunks));
  ASSERT_TRUE(doc.ok()) << context;
  tree::Tree projected =
      handle.project_attr.empty()
          ? doc->tree()
          : html::ProjectAttributeIntoLabels(*doc, handle.project_attr);
  std::set<std::pair<std::string, tree::NodeId>> got;
  for (const stream::StreamResult& r : emitted) {
    const tree::NodeId external = r.node - shift;
    EXPECT_TRUE(got.emplace(r.pattern, external).second)
        << context << ": duplicate emission " << r.pattern << "/" << r.node;
    ASSERT_GE(external, 0) << context;
    ASSERT_LT(external, projected.size()) << context;
    EXPECT_EQ(r.label, projected.label_name(external)) << context;
    EXPECT_EQ(r.text, projected.SubtreeText(external)) << context;
  }
  EXPECT_EQ(got, expected_extents) << context;
}

// ---------------------------------------------------------------------------
// Tokenizer chunking invariance
// ---------------------------------------------------------------------------

TEST(StreamTokenizerTest, ChunkingNeverChangesTheTokenStream) {
  std::vector<std::string> pages = NastyPages();
  pages.push_back(CatalogPage(1, 6));
  pages.push_back(BoardPage(2, 3, 3));
  for (size_t pi = 0; pi < pages.size(); ++pi) {
    const std::string& page = pages[pi];
    const std::string expected = TokenSig(html::Tokenize(page));
    const bool small = page.size() <= 4096;
    for (const auto& chunks : Chunkings(page, 1000 + pi, small)) {
      html::StreamTokenizer tok;
      std::vector<html::Token> tokens;
      for (const std::string& chunk : chunks) {
        ASSERT_TRUE(tok.Feed(chunk, &tokens).ok());
      }
      ASSERT_TRUE(tok.Finish(&tokens).ok());
      EXPECT_TRUE(tok.finished());
      EXPECT_EQ(TokenSig(tokens), expected)
          << "page " << pi << " under " << chunks.size() << " chunks";
    }
  }
}

// ---------------------------------------------------------------------------
// The differential harness (tentpole): streaming ≡ batch, all engines, all
// chunkings
// ---------------------------------------------------------------------------

struct DifferentialCase {
  wrapper::Wrapper wrapper;
  std::string attr;
  std::string page;
};

std::vector<DifferentialCase> DifferentialCases() {
  std::vector<DifferentialCase> cases;
  cases.push_back({CatalogWrapper(), "class", CatalogPage(11, 12)});
  cases.push_back({CatalogWrapper(), "class", CatalogPage(12, 3)});
  cases.push_back({BoardWrapper(), "", BoardPage(3, 3, 3)});
  cases.push_back({BoardWrapper(), "", BoardPage(4, 2, 5)});
  for (const std::string& page : NastyPages()) {
    cases.push_back({GenericWrapper(), "", page});
    cases.push_back({GenericWrapper(), "class", page});
  }
  return cases;
}

TEST(StreamDifferentialTest, StreamingIsByteIdenticalToBatchEverywhere) {
  std::vector<DifferentialCase> cases = DifferentialCases();
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const DifferentialCase& c = cases[ci];
    const std::string context = "case " + std::to_string(ci);

    // Batch oracle, and the engines' own cross-agreement: streaming equals
    // *the* batch answer, not one engine's quirk.
    auto auto_xml =
        BatchXml(runtime::RuntimeOptions::EngineMode::kAuto, c.wrapper, c.attr, c.page);
    auto native_xml = BatchXml(runtime::RuntimeOptions::EngineMode::kNativeElog,
                               c.wrapper, c.attr, c.page);
    ASSERT_TRUE(auto_xml.ok()) << context;
    ASSERT_TRUE(native_xml.ok()) << context;
    EXPECT_EQ(*auto_xml, *native_xml) << context;

    runtime::RuntimeOptions rt_options;
    runtime::WrapperRuntime rt(rt_options);
    auto handle = rt.Register(c.wrapper, c.attr);
    ASSERT_TRUE(handle.ok()) << context;
    if (handle->program->has_ground_plan) {
      auto grounded = BatchXml(runtime::RuntimeOptions::EngineMode::kGroundedDatalog,
                               c.wrapper, c.attr, c.page);
      auto seminaive = BatchXml(runtime::RuntimeOptions::EngineMode::kSemiNaiveDatalog,
                                c.wrapper, c.attr, c.page);
      ASSERT_TRUE(grounded.ok()) << context;
      ASSERT_TRUE(seminaive.ok()) << context;
      EXPECT_EQ(*auto_xml, *grounded) << context;
      EXPECT_EQ(*auto_xml, *seminaive) << context;
    }

    const auto extents = BatchExtents(c.wrapper, c.attr, c.page);
    const bool small = c.page.size() <= 4096;
    const auto chunkings = Chunkings(c.page, 7000 + ci, small);
    for (size_t ki = 0; ki < chunkings.size(); ++ki) {
      CheckOneChunking(rt, *handle, chunkings[ki], *auto_xml, extents,
                       context + " chunking " + std::to_string(ki));
    }
  }
}

// ---------------------------------------------------------------------------
// Early emission
// ---------------------------------------------------------------------------

TEST(StreamSessionTest, EmitsResultsBeforeEndOfInput) {
  const std::string page = CatalogPage(21, 40);
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  size_t emitted_during_feed = 0;
  stream::StreamOptions options;
  options.on_result = [&emitted_during_feed](const stream::StreamResult&) {
    ++emitted_during_feed;
  };
  auto session = rt.SubmitStream({.wrapper = *handle}, std::move(options));
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE((*session)->streaming());

  // Everything but the tail: dozens of item rows have closed by now, and
  // their extraction must not wait for EOF.
  ASSERT_TRUE((*session)->Feed(
                  std::string_view(page).substr(0, page.size() - 16))
                  .ok());
  EXPECT_GT(emitted_during_feed, 0u);
  const size_t before_finish = emitted_during_feed;

  ASSERT_TRUE((*session)->Feed(
                  std::string_view(page).substr(page.size() - 16))
                  .ok());
  auto xml = (*session)->Finish();
  ASSERT_TRUE(xml.ok());
  EXPECT_GE(emitted_during_feed, before_finish);
  EXPECT_EQ(*xml, *rt.Wrap(*handle, page));
  EXPECT_EQ(rt.stats().stream_sessions, 1);
  EXPECT_EQ(rt.stats().stream_sessions_failed, 0);
}

// ---------------------------------------------------------------------------
// Deadlines inside the parse
// ---------------------------------------------------------------------------

/// A page whose tokenization cannot finish instantly: megabytes of long
/// quoted attribute values (the tokenizer's strided deadline polls sit in
/// exactly these scan loops).
std::string MultiMegabytePage() {
  std::string page = "<html><body>";
  const std::string filler(512, 'x');
  for (int i = 0; i < 4000; ++i) {
    page += "<div id=\"" + filler + "\">t</div>";
  }
  page += "</body></html>";
  return page;  // ~2MB
}

TEST(StreamDeadlineTest, ExpiredControlFiresInsideTokenization) {
  // Deterministic: the control is already expired, so the first strided poll
  // inside the scan loop must unwind — mid-page, long before EOF.
  const std::string page = MultiMegabytePage();
  const util::EvalControl control(
      util::Deadline::After(std::chrono::milliseconds(0)), nullptr);
  html::StreamTokenizer tok;
  std::vector<html::Token> tokens;
  util::Status s = tok.Feed(page, &tokens, &control);
  EXPECT_EQ(s.code(), util::StatusCode::kDeadlineExceeded);
}

TEST(StreamDeadlineTest, MillisecondDeadlineKillsMultiMegabyteSession) {
  const std::string page = MultiMegabytePage();
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  runtime::RequestOptions request;
  request.deadline = util::Deadline::After(std::chrono::milliseconds(1));
  auto session = rt.SubmitStream({.wrapper = *handle, .options = request}, {});
  if (!session.ok()) {
    // The millisecond elapsed before the session even opened (slow machine):
    // still the typed failure, still counted.
    EXPECT_EQ(session.status().code(), util::StatusCode::kDeadlineExceeded);
    EXPECT_EQ(rt.stats().stream_sessions_failed, 1);
    return;
  }
  // Keep feeding multi-MB chunks; the deadline must fire with a typed status
  // long before this loop runs out.
  util::Status s;
  for (int i = 0; i < 64 && s.ok(); ++i) s = (*session)->Feed(page);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kDeadlineExceeded);
  // The session is dead and latched: same status from every later call.
  EXPECT_EQ((*session)->Feed("x").code(),
            util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ((*session)->Finish().status().code(),
            util::StatusCode::kDeadlineExceeded);
  EXPECT_GE(rt.stats().deadline_exceeded, 1);
  // A deadline-killed session is a failed one, never a success — and the
  // latched repeats above must not double-count it.
  EXPECT_EQ(rt.stats().stream_sessions, 0);
  EXPECT_EQ(rt.stats().stream_sessions_failed, 1);
}

// ---------------------------------------------------------------------------
// Session lifecycle and typed errors
// ---------------------------------------------------------------------------

TEST(StreamSessionTest, EmptyAndContentFreeInputsFailLikeBatch) {
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(GenericWrapper(), "");
  ASSERT_TRUE(handle.ok());
  for (const std::string page : {"", "<!-- only a comment -->"}) {
    auto session = rt.SubmitStream({.wrapper = *handle}, {});
    ASSERT_TRUE(session.ok());
    if (!page.empty()) ASSERT_TRUE((*session)->Feed(page).ok());
    auto xml = (*session)->Finish();
    ASSERT_FALSE(xml.ok());
    EXPECT_EQ(xml.status().code(), util::StatusCode::kInvalidArgument);
    // Identical to what batch returns for the same bytes.
    EXPECT_EQ(rt.Wrap(*handle, page).status().code(),
              util::StatusCode::kInvalidArgument);
  }
  // Parse-level failures count as failed sessions (batch Wrap failures on
  // the same bytes do not touch the stream counters).
  EXPECT_EQ(rt.stats().stream_sessions, 0);
  EXPECT_EQ(rt.stats().stream_sessions_failed, 2);
}

TEST(StreamSessionTest, FeedAfterFinishFails) {
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(GenericWrapper(), "");
  ASSERT_TRUE(handle.ok());
  auto session = rt.SubmitStream({.wrapper = *handle}, {});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->Feed("<div>x</div>").ok());
  ASSERT_TRUE((*session)->Finish().ok());
  EXPECT_EQ((*session)->Feed("more").code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ((*session)->Finish().status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(StreamSessionTest, PeakMemoryObservability) {
  const std::string page = CatalogPage(33, 25);
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());
  auto session = rt.SubmitStream({.wrapper = *handle}, {});
  ASSERT_TRUE(session.ok());
  for (const std::string& chunk : FixedChunks(page, 97)) {
    ASSERT_TRUE((*session)->Feed(chunk).ok());
  }
  ASSERT_TRUE((*session)->Finish().ok());
  // The open-node high-water mark tracks nesting depth, not page length: a
  // flat catalog page holds only its current ancestor chain open.
  EXPECT_GT((*session)->peak_live_nodes(), 0);
  EXPECT_LT((*session)->peak_live_nodes(), 64);
  EXPECT_GT((*session)->peak_edb_bytes(), 0);
  // The session's peaks survive it as registry gauges.
  const std::string prom = rt.ExportPrometheus();
  EXPECT_NE(prom.find("mdatalog_stream_peak_live_nodes"), std::string::npos);
  EXPECT_NE(prom.find("mdatalog_stream_peak_edb_bytes"), std::string::npos);
}

TEST(StreamSessionTest, DeltaProgramFallsBackButStillStreamsTheParse) {
  const std::string page =
      "<doc><a>first</a><b>noise</b><a>second</a><a>third</a></doc>";
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(DeltaWrapper(), "");
  ASSERT_TRUE(handle.ok());
  EXPECT_FALSE(handle->program->has_ground_plan);

  std::vector<stream::StreamResult> emitted;
  stream::StreamOptions options;
  options.on_result = [&emitted](const stream::StreamResult& r) {
    emitted.push_back(r);
  };
  auto session = rt.SubmitStream({.wrapper = *handle}, std::move(options));
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE((*session)->streaming());

  for (const std::string& chunk : FixedChunks(page, 5)) {
    ASSERT_TRUE((*session)->Feed(chunk).ok());
  }
  EXPECT_TRUE(emitted.empty());  // fallback: results only at Finish
  auto xml = (*session)->Finish();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(*xml, *rt.Wrap(*handle, page));
  EXPECT_FALSE(emitted.empty());
}

// ---------------------------------------------------------------------------
// Concurrency (runs under TSan via the `tsan` label)
// ---------------------------------------------------------------------------

TEST(StreamConcurrencyTest, ParallelSessionsOnOneRuntimeAgreeWithBatch) {
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  constexpr int kThreads = 8;
  std::vector<std::string> pages;
  std::vector<std::string> expected;
  for (int i = 0; i < kThreads; ++i) {
    pages.push_back(CatalogPage(500 + i, 6 + i));
    auto xml = rt.Wrap(*handle, pages.back());
    ASSERT_TRUE(xml.ok());
    expected.push_back(*xml);
  }

  std::vector<std::string> got(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto session = rt.SubmitStream({.wrapper = *handle}, {});
      ASSERT_TRUE(session.ok());
      for (const std::string& chunk : RandomChunks(pages[i], 900 + i)) {
        ASSERT_TRUE((*session)->Feed(chunk).ok());
      }
      auto xml = (*session)->Finish();
      ASSERT_TRUE(xml.ok());
      got[i] = *xml;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(got, expected);
  EXPECT_EQ(rt.stats().stream_sessions, kThreads);
  EXPECT_EQ(rt.stats().stream_sessions_failed, 0);
}

}  // namespace
