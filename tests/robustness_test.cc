// Failure injection: every parser and translator in the library must turn
// malformed input into a clean Status — never crash, never silently accept.
// Plus resource-limit behavior (budgets return ResourceExhausted, not hangs).

#include <string_view>

#include <gtest/gtest.h>

#include "src/caterpillar/eval.h"
#include "src/caterpillar/expr.h"
#include "src/core/eval.h"
#include "src/core/grounder.h"
#include "src/core/parser.h"
#include "src/core/examples.h"
#include "src/core/program_generator.h"
#include "src/core/validate.h"
#include "src/elog/ast.h"
#include "src/elog/eval.h"
#include "src/html/parser.h"
#include "src/mso/compile.h"
#include "src/mso/formula.h"
#include "src/tmnf/pipeline.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"
#include "src/xpath/xpath.h"

namespace mdatalog {
namespace {

// ---------------------------------------------------------------------------
// Fuzz-ish inputs: random byte soup through every parser
// ---------------------------------------------------------------------------

std::string RandomGarbage(util::Rng& rng, int32_t len) {
  // string_view, and the bound derived from it: a hand-counted literal pool
  // size read past the terminator (caught by ASan in CI).
  constexpr std::string_view pool =
      "abcXY_()[]{}<>/\\.,:;|&~^-=*+\"'0123456789 \t\n%@#!?";
  std::string out;
  for (int32_t i = 0; i < len; ++i) {
    out += pool[rng.Below(pool.size())];
  }
  return out;
}

TEST(RobustnessTest, ParsersSurviveGarbage) {
  util::Rng rng(20260610);
  for (int trial = 0; trial < 300; ++trial) {
    std::string junk = RandomGarbage(rng, 1 + rng.Below(60));
    // Each call must return (ok or error) — no crash, no hang.
    (void)core::ParseProgram(junk);
    (void)caterpillar::ParseExpr(junk);
    (void)mso::ParseFormula(junk);
    (void)elog::ParseElog(junk);
    (void)xpath::ParseXPath(junk);
  }
  SUCCEED();
}

TEST(RobustnessTest, HtmlParserSurvivesGarbage) {
  util::Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    std::string junk = RandomGarbage(rng, 1 + rng.Below(120));
    auto doc = html::ParseHtml(junk);
    if (doc.ok()) {
      // Whatever came out must be a well-formed tree.
      EXPECT_GE(doc->tree().size(), 1);
      EXPECT_EQ(doc->tree().Preorder().size(),
                static_cast<size_t>(doc->tree().size()));
    }
  }
}

TEST(RobustnessTest, HtmlPathologies) {
  // Deeply nested, never closed.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "<div>";
  auto doc = html::ParseHtml(deep + "x");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->tree().size(), 201);
  // A wall of end tags with no matching start.
  EXPECT_FALSE(html::ParseHtml("</a></b></c>").ok());  // no content at all
  // Attributes with every quoting style and junk between them.
  auto attrs = html::ParseHtml("<a x=1 === y='2' \"stray\" z>t</a>");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->GetAttr(0, "x"), "1");
  EXPECT_EQ(attrs->GetAttr(0, "y"), "2");
  EXPECT_TRUE(attrs->HasAttr(0, "z"));
}

// ---------------------------------------------------------------------------
// Random program × random tree sweeps through every engine must agree and
// never crash (wider than the per-module suites: one shared corpus).
// ---------------------------------------------------------------------------

TEST(RobustnessTest, EngineSweepNeverDiverges) {
  util::Rng rng(909);
  for (int trial = 0; trial < 30; ++trial) {
    core::ProgramGenOptions opts;
    opts.num_rules = 1 + static_cast<int32_t>(rng.Below(10));
    opts.num_idb_preds = 1 + static_cast<int32_t>(rng.Below(5));
    opts.max_body_atoms = 1 + static_cast<int32_t>(rng.Below(6));
    opts.allow_extended = rng.Chance(1, 2);
    core::Program p = core::RandomMonadicProgram(rng, opts);
    tree::Tree t = tree::RandomTree(
        rng, 1 + static_cast<int32_t>(rng.Below(30)), {"a", "b"});
    auto semi = core::EvaluateOnTree(p, t, core::Engine::kSemiNaive);
    auto naive = core::EvaluateOnTree(p, t, core::Engine::kNaive);
    ASSERT_TRUE(semi.ok());
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(semi->Unary(p.query_pred()), naive->Unary(p.query_pred()));
    // The TMNF pipeline must accept everything the generator emits.
    auto tmnf = tmnf::ToTmnf(p);
    ASSERT_TRUE(tmnf.ok()) << tmnf.status().ToString() << core::ToString(p);
  }
}

// ---------------------------------------------------------------------------
// Resource limits surface as ResourceExhausted
// ---------------------------------------------------------------------------

TEST(RobustnessTest, MsoStateBudget) {
  // A formula with several set quantifiers under a tiny state budget.
  auto f = mso::ParseFormula(
      "exists Z. exists W. forall x. (in(x, Z) | in(x, W))");
  ASSERT_TRUE(f.ok());
  mso::MsoCompileOptions opts;
  opts.alphabet = {"a"};
  opts.max_states = 2;
  auto bta = mso::CompileSentence(*f, opts);
  EXPECT_FALSE(bta.ok());
  EXPECT_EQ(bta.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(RobustnessTest, ElogDerivationBudget) {
  auto p = elog::ParseElog(
      "anynode(X) <- root(X).\n"
      "anynode(X) <- anynode(P), subelem(P, \"_\", X).\n");
  ASSERT_TRUE(p.ok());
  tree::Tree t = tree::ChainTree(64, "a");
  auto r = elog::EvaluateElog(*p, t, /*max_derivations=*/8);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(RobustnessTest, FixpointDerivationBudget) {
  core::Program p = core::DomProgram();
  tree::Tree t = tree::ChainTree(100, "a");
  core::TreeDatabase db(t);
  core::EvalOptions opts;
  opts.max_derived = 5;
  auto naive = core::EvaluateNaive(p, db, opts);
  EXPECT_FALSE(naive.ok());
  EXPECT_EQ(naive.status().code(), util::StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Degenerate trees through the main pipelines
// ---------------------------------------------------------------------------

TEST(RobustnessTest, SingleNodeTreeEverywhere) {
  tree::TreeBuilder b;
  b.Root("a");
  tree::Tree t = b.Build();

  auto even = core::EvaluateOnTree(core::EvenAProgram(), t);
  ASSERT_TRUE(even.ok());
  EXPECT_TRUE(even->Query().empty());  // one 'a': odd

  auto xp = xpath::EvalXPath(t, "//a");
  ASSERT_TRUE(xp.ok());
  EXPECT_EQ(*xp, (std::vector<tree::NodeId>{0}));

  auto elog_p = elog::ParseElog("q(X) <- root(X), leaf(X).");
  ASSERT_TRUE(elog_p.ok());
  auto er = elog::EvaluateElog(*elog_p, t);
  ASSERT_TRUE(er.ok());
  EXPECT_EQ(er->Of("q"), (std::vector<tree::NodeId>{0}));
}

TEST(RobustnessTest, WideFlatTreeEverywhere) {
  tree::Tree t =
      tree::ChildrenWord("r", std::vector<std::string>(500, "a"));
  auto anc = core::EvaluateOnTree(core::HasAncestorProgram("r"), t);
  ASSERT_TRUE(anc.ok());
  EXPECT_EQ(anc->Query().size(), 500u);
  auto xp = xpath::EvalXPath(t, "//a[not(following-sibling::a)]");
  ASSERT_TRUE(xp.ok());
  EXPECT_EQ(*xp, (std::vector<tree::NodeId>{500}));
}

TEST(RobustnessTest, DeepChainTreeEverywhere) {
  tree::Tree t = tree::ChainTree(800, "a");
  auto even = core::EvaluateOnTree(core::EvenAProgram(), t);
  ASSERT_TRUE(even.ok());
  EXPECT_EQ(even->Query().size(), 400u);  // every other depth is even-sized
  auto ord = caterpillar::EvalImage(t, caterpillar::DocumentOrderExpr(),
                                    {t.root()});
  ASSERT_TRUE(ord.ok());
  EXPECT_EQ(ord->size(), 799u);  // everything after the root
}

}  // namespace
}  // namespace mdatalog
