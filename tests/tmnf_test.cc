#include <gtest/gtest.h>

#include "src/core/examples.h"
#include "src/core/grounder.h"
#include "src/core/parser.h"
#include "src/core/program_generator.h"
#include "src/core/validate.h"
#include "src/tmnf/acyclic.h"
#include "src/tmnf/normal_form.h"
#include "src/tmnf/pipeline.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

namespace mdatalog::tmnf {
namespace {

using core::Program;
using tree::Tree;

// ---------------------------------------------------------------------------
// Definition 5.1: the TMNF checker
// ---------------------------------------------------------------------------

Program MustParse(const std::string& text) {
  auto p = core::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(*p);
}

TEST(TmnfCheckTest, AcceptsAllThreeForms) {
  Program p = MustParse(
      "p(X) :- leaf(X).\n"                       // form (1), EDB
      "q(X) :- p(X).\n"                          // form (1), IDB
      "r(X) :- p(X0), firstchild(X0, X).\n"      // form (2), B = R
      "s(X) :- p(X0), nextsibling(X, X0).\n"     // form (2), B = R^-1
      "t(X) :- p(X), label_a(X).\n"              // form (3)
      "u(X) :- root(X), lastsibling(X).\n");     // form (3), EDB × EDB
  EXPECT_TRUE(IsTmnf(p));
}

TEST(TmnfCheckTest, RejectsNonTmnfShapes) {
  EXPECT_FALSE(IsTmnf(MustParse("p(X) :- q(X), r(X), s(X).")));  // 3 atoms
  EXPECT_FALSE(IsTmnf(MustParse("p(X) :- child(X0, X), q(X0)."))) <<
      "child is not a τ_ur relation";
  EXPECT_FALSE(IsTmnf(MustParse("p(X) :- firstchild(X0, X).")));  // no unary
  EXPECT_FALSE(
      IsTmnf(MustParse("p(X) :- q(Y), firstchild(Y, Z), r(X).")));
  EXPECT_FALSE(IsTmnf(MustParse("p(X) :- q(X0), firstchild(X0, Y).")));
  EXPECT_FALSE(IsTmnf(MustParse("p(X) :- firstsibling(X).")));  // not τ_ur
}

TEST(TmnfCheckTest, RankedModeUsesChildK) {
  Program p = MustParse("p(X) :- q(X0), child2(X0, X). q(X) :- leaf(X).");
  EXPECT_TRUE(IsTmnf(p, {.ranked = true}));
  EXPECT_FALSE(IsTmnf(p, {.ranked = false}));
  Program ur = MustParse("p(X) :- q(X0), firstchild(X0, X). q(X) :- leaf(X).");
  EXPECT_FALSE(IsTmnf(ur, {.ranked = true}));
}

// ---------------------------------------------------------------------------
// Acyclicity (query multigraph, Section 5)
// ---------------------------------------------------------------------------

TEST(AcyclicRuleTest, ForestsAndCycles) {
  Program p = MustParse(
      "a(X) :- firstchild(X, Y), nextsibling(Y, Z).\n"
      "b(X) :- firstchild(X, Y), nextsibling(X, Y).\n"   // parallel edge
      "c(X) :- nextsibling(X, X).\n"                     // self-loop
      "d(X) :- leaf(X), root(Y).\n");                    // no binary: forest
  EXPECT_TRUE(IsAcyclicRule(p.rules()[0]));
  EXPECT_FALSE(IsAcyclicRule(p.rules()[1]));
  EXPECT_FALSE(IsAcyclicRule(p.rules()[2]));
  EXPECT_TRUE(IsAcyclicRule(p.rules()[3]));
}

// ---------------------------------------------------------------------------
// Lemma 5.5 chase (unranked)
// ---------------------------------------------------------------------------

TEST(ChaseUnrankedTest, MergesSiblingParents) {
  // x1 and x3 are parents of siblings -> merged (Figure 3 situation).
  Program p = MustParse(
      "q(X1) :- firstchild(X1, X5), child(X3, X6), nextsibling(X5, X6).");
  auto res = MakeRuleAcyclicUnranked(&p, p.rules()[0]);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_TRUE(res->satisfiable);
  EXPECT_GE(res->merged_vars, 1);
  // child is gone; the result uses only firstchild/nextsibling.
  for (const core::Atom& a : res->rule.body) {
    EXPECT_NE(p.preds().Name(a.pred), "child");
  }
  EXPECT_TRUE(IsAcyclicRule(res->rule));
  // x1 ≡ x3: only 3 variables remain (x1, x5, x6).
  EXPECT_EQ(res->rule.num_vars(), 3);
}

TEST(ChaseUnrankedTest, AnchorsChildComponentWithFreshFirstchild) {
  // Lemma 5.5 step 5, "otherwise" case: no firstchild atom at all.
  Program p = MustParse("q(X) :- child(X, Y), nextsibling(Y, Z).");
  auto res = MakeRuleAcyclicUnranked(&p, p.rules()[0]);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(res->satisfiable);
  bool has_fc = false, has_nstc = false;
  for (const core::Atom& a : res->rule.body) {
    if (p.preds().Name(a.pred) == "firstchild") has_fc = true;
    if (p.preds().Name(a.pred) == "nextsibling_tc") has_nstc = true;
    EXPECT_NE(p.preds().Name(a.pred), "child");
  }
  EXPECT_TRUE(has_fc);
  EXPECT_TRUE(has_nstc);
  EXPECT_EQ(res->rule.num_vars(), 4);  // fresh anchor y0 added
}

TEST(ChaseUnrankedTest, ChildImpliedByFirstchildAnchorInComponent) {
  // The component already contains the firstchild target: child atoms are
  // simply dropped, no nextsibling* needed.
  Program p = MustParse(
      "q(X) :- firstchild(X, Y), nextsibling(Y, Z), child(X, Z).");
  auto res = MakeRuleAcyclicUnranked(&p, p.rules()[0]);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(res->satisfiable);
  EXPECT_EQ(res->rule.body.size(), 2u);  // firstchild + nextsibling
  EXPECT_EQ(res->rule.num_vars(), 3);
}

TEST(ChaseUnrankedTest, UnsatDetection) {
  const char* unsat_rules[] = {
      // A first child cannot have a previous sibling.
      "q(X) :- firstchild(X, Y), nextsibling(Z, Y).",
      // Sibling cycle.
      "q(X) :- nextsibling(X, Y), nextsibling(Y, X).",
      // Depth cycle through child.
      "q(X) :- child(X, Y), child(Y, X).",
      // Child of itself.
      "q(X) :- child(X, X).",
      // Sibling of itself (after forced merge: Y≡X via two firstchild FDs).
      "q(X) :- firstchild(X, Y), firstchild(X, Z), nextsibling(Y, Z).",
      // Position conflict: Z before the first child Y.
      "q(X) :- firstchild(X, Y), child(X, Z), nextsibling(Z, Y).",
      // Mixed depth conflict: Y both child and sibling of X.
      "q(X) :- firstchild(X, Y), nextsibling(X, Y).",
  };
  for (const char* text : unsat_rules) {
    Program p = MustParse(text);
    auto res = MakeRuleAcyclicUnranked(&p, p.rules()[0]);
    ASSERT_TRUE(res.ok()) << text << ": " << res.status().ToString();
    EXPECT_FALSE(res->satisfiable) << text;
  }
}

TEST(ChaseUnrankedTest, SemanticsPreserved) {
  util::Rng rng(404);
  const char* rules[] = {
      "q(X) :- firstchild(X, Y), child(X, Z), nextsibling(Y, Z), label_a(Z).",
      "q(X) :- child(X, Y), label_b(Y), lastsibling(Y).",
      "q(X) :- child(Y, X), leaf(X), root(Y).",
      "q(X) :- firstchild(X1, X5), child(X3, X6), nextsibling(X5, X6), "
      "leaf(X6), label_a(X1), root(X3), label_a(X)., q2(X) :- q(X).",
  };
  for (const char* text : rules) {
    std::string fixed(text);
    // The last entry sneaks in a second rule with ", " — normalize.
    for (size_t pos; (pos = fixed.find("., ")) != std::string::npos;) {
      fixed.replace(pos, 3, ".\n");
    }
    Program original = MustParse(fixed);
    Program chased_prog = original;  // copy preds
    std::vector<core::Rule> chased_rules;
    for (const core::Rule& r : original.rules()) {
      auto res = MakeRuleAcyclicUnranked(&chased_prog, r);
      ASSERT_TRUE(res.ok()) << fixed;
      if (res->satisfiable) chased_rules.push_back(res->rule);
    }
    chased_prog.mutable_rules() = chased_rules;
    for (int trial = 0; trial < 10; ++trial) {
      Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(25)),
                                {"a", "b"});
      auto lhs = core::EvaluateOnTree(original, t, core::Engine::kSemiNaive);
      auto rhs =
          core::EvaluateOnTree(chased_prog, t, core::Engine::kSemiNaive);
      ASSERT_TRUE(lhs.ok());
      ASSERT_TRUE(rhs.ok());
      core::PredId q = original.preds().Find("q");
      EXPECT_EQ(lhs->Unary(q), rhs->Unary(q)) << fixed;
    }
  }
}

// ---------------------------------------------------------------------------
// Lemma 5.4 chase (ranked)
// ---------------------------------------------------------------------------

TEST(ChaseRankedTest, MergesViaFunctionalDependencies) {
  Program p = MustParse("q(X) :- child1(X, Y), child1(X, Z), label_a(Z).");
  auto res = MakeRuleAcyclicRanked(&p, p.rules()[0]);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(res->satisfiable);
  EXPECT_EQ(res->rule.num_vars(), 2);  // Y ≡ Z
  EXPECT_EQ(res->rule.body.size(), 2u);
}

TEST(ChaseRankedTest, CrossArityTargetIsUnsat) {
  // Y cannot be both the 1st and the 2nd child.
  Program p = MustParse("q(X) :- child1(X, Y), child2(Z, Y).");
  auto res = MakeRuleAcyclicRanked(&p, p.rules()[0]);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->satisfiable);
}

TEST(ChaseRankedTest, DepthCycleIsUnsat) {
  Program p = MustParse("q(X) :- child1(X, Y), child2(Y, X).");
  auto res = MakeRuleAcyclicRanked(&p, p.rules()[0]);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->satisfiable);
}

TEST(ChaseRankedTest, MergesParents) {
  Program p = MustParse("q(X) :- child2(X, Y), child2(Z, Y), label_a(Z).");
  auto res = MakeRuleAcyclicRanked(&p, p.rules()[0]);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(res->satisfiable);
  EXPECT_EQ(res->rule.num_vars(), 2);  // X ≡ Z
}

// ---------------------------------------------------------------------------
// Theorem 5.2: the full pipeline
// ---------------------------------------------------------------------------

void ExpectTmnfEquivalent(const Program& input, util::Rng& rng,
                          int32_t trials = 8, int32_t max_nodes = 30) {
  TmnfStats stats;
  auto tmnf = ToTmnf(input, &stats);
  ASSERT_TRUE(tmnf.ok()) << tmnf.status().ToString() << "\n"
                         << core::ToString(input);
  EXPECT_TRUE(IsTmnf(*tmnf)) << core::ToString(*tmnf);
  // The TMNF output is over τ_ur, hence groundable (Theorem 4.2 engine).
  EXPECT_TRUE(core::GroundableOverTree(*tmnf));
  std::vector<bool> intensional = input.IntensionalMask();
  for (int trial = 0; trial < trials; ++trial) {
    Tree t = tree::RandomTree(
        rng, 1 + static_cast<int32_t>(rng.Below(max_nodes)), {"a", "b", "c"});
    auto lhs = core::EvaluateOnTree(input, t, core::Engine::kSemiNaive);
    auto rhs = core::EvaluateOnTree(*tmnf, t, core::Engine::kGrounded);
    ASSERT_TRUE(lhs.ok());
    ASSERT_TRUE(rhs.ok()) << rhs.status().ToString();
    for (core::PredId q = 0; q < input.preds().size(); ++q) {
      if (!intensional[q] || input.preds().Arity(q) != 1) continue;
      // Predicate ids carry over: ToTmnf starts from a copy of the input.
      EXPECT_EQ(lhs->Unary(q), rhs->Unary(q))
          << "pred " << input.preds().Name(q) << "\ninput:\n"
          << core::ToString(input);
    }
  }
}

TEST(TmnfPipelineTest, PaperProgramsRoundTrip) {
  util::Rng rng(77);
  ExpectTmnfEquivalent(core::EvenAProgram({"b", "c"}), rng);
  ExpectTmnfEquivalent(core::HasAncestorProgram("b"), rng);
  ExpectTmnfEquivalent(core::EvenDepthLeafProgram(), rng);
  ExpectTmnfEquivalent(core::DomProgram(), rng);
}

TEST(TmnfPipelineTest, ExtendedSignatureProgramsRoundTrip) {
  util::Rng rng(1234);
  const char* programs[] = {
      "q(X) :- child(X, Y), label_a(Y).",
      "q(X) :- lastchild(X, Y), leaf(Y).",
      "q(X) :- child(X, Y), child(Y, Z), label_b(Z).",
      "q(X) :- firstsibling(X), label_a(X).",
      "q(X) :- child(Y, X), q2(Y).\nq2(X) :- root(X).\nq2(X) :- q(X).",
      // Disconnected rule: q holds of leaves if any node is labeled c.
      "q(X) :- leaf(X), label_c(Y).",
      // Deeply mixed.
      "q(X) :- child(X, Y), nextsibling(Y, Z), child(X, W), "
      "nextsibling(Z, W), label_a(W).",
  };
  for (const char* text : programs) {
    ExpectTmnfEquivalent(MustParse(text), rng);
  }
}

TEST(TmnfPipelineTest, RandomProgramsRoundTrip) {
  util::Rng rng(20240611);
  for (int i = 0; i < 12; ++i) {
    core::ProgramGenOptions opts;
    opts.num_rules = 2 + static_cast<int32_t>(rng.Below(5));
    opts.num_idb_preds = 2 + static_cast<int32_t>(rng.Below(3));
    opts.allow_extended = (i % 2 == 0);
    Program p = core::RandomMonadicProgram(rng, opts);
    ExpectTmnfEquivalent(p, rng, /*trials=*/4, /*max_nodes=*/20);
  }
}

TEST(TmnfPipelineTest, UnsatRulesAreDropped) {
  Program p = MustParse(
      "q(X) :- child(X, X).\n"
      "q(X) :- root(X).\n");
  TmnfStats stats;
  auto tmnf = ToTmnf(p, &stats);
  ASSERT_TRUE(tmnf.ok());
  EXPECT_EQ(stats.rules_dropped_unsat, 1);
  util::Rng rng(1);
  Tree t = tree::RandomTree(rng, 10, {"a"});
  auto r = core::EvaluateOnTree(*tmnf, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Unary(p.preds().Find("q")), (std::vector<int32_t>{0}));
}

TEST(TmnfPipelineTest, OutputSizeIsLinear) {
  // Output rules should be within a constant factor of input atoms.
  util::Rng rng(55);
  for (int32_t m : {4, 8, 16, 32}) {
    core::ProgramGenOptions opts;
    opts.num_rules = m;
    opts.allow_extended = true;
    Program p = core::RandomMonadicProgram(rng, opts);
    TmnfStats stats;
    auto tmnf = ToTmnf(p, &stats);
    ASSERT_TRUE(tmnf.ok());
    // The __any connector contributes ~90 rules per disconnected component;
    // the bound is generous but linear in input size.
    EXPECT_LE(stats.output_rules, 120 * p.SizeInAtoms());
  }
}

TEST(TmnfPipelineTest, QueryPredicateCarriesOver) {
  Program p = MustParse("q(X) :- child(X, Y), leaf(Y).");
  p.set_query_pred(p.preds().Find("q"));
  auto tmnf = ToTmnf(p);
  ASSERT_TRUE(tmnf.ok());
  EXPECT_EQ(tmnf->query_pred(), p.query_pred());
  Tree t = tree::PaperFigure1Tree();
  auto r = core::EvaluateOnTree(*tmnf, t);
  ASSERT_TRUE(r.ok());
  // Nodes with a leaf child: root (children n2, n6 are leaves) and n3.
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{0, 2}));
}

TEST(TmnfPipelineTest, RejectsBadInput) {
  EXPECT_FALSE(ToTmnf(MustParse("q(X) :- edge(X, Y).")).ok());
  EXPECT_FALSE(ToTmnf(MustParse("q(X) :- q2(X, X). q2(X, Y) :- "
                                "firstchild(X, Y).")).ok());  // non-monadic
  EXPECT_FALSE(ToTmnf(MustParse("b :- leaf(X). q(X) :- leaf(X), b.")).ok());
  EXPECT_FALSE(ToTmnf(MustParse("q(3) :- root(0).")).ok());
  EXPECT_FALSE(ToTmnf(MustParse("__q(X) :- leaf(X).")).ok());  // reserved
}

TEST(TmnfPipelineRankedTest, RoundTripOnBoundedArityTrees) {
  util::Rng rng(88);
  const char* programs[] = {
      "q(X) :- child1(X, Y), label_a(Y).",
      "q(X) :- child2(X, Y), leaf(Y), label_b(X).",
      "q(X) :- child1(X, Y), child2(X, Z), label_a(Y), label_a(Z).",
      "q(X) :- leaf(X), label_c(Y).",  // disconnected
      "q(X) :- child1(Y, X), q2(Y).\nq2(X) :- root(X).",
  };
  for (const char* text : programs) {
    Program input = MustParse(text);
    TmnfStats stats;
    auto tmnf = ToTmnfRanked(input, &stats);
    ASSERT_TRUE(tmnf.ok()) << tmnf.status().ToString() << "\n" << text;
    EXPECT_TRUE(IsTmnf(*tmnf, {.ranked = true})) << core::ToString(*tmnf);
    for (int trial = 0; trial < 6; ++trial) {
      Tree t = tree::RandomBoundedArityTree(
          rng, 1 + static_cast<int32_t>(rng.Below(25)), {"a", "b", "c"}, 2);
      auto lhs = core::EvaluateOnTree(input, t, core::Engine::kSemiNaive);
      auto rhs = core::EvaluateOnTree(*tmnf, t, core::Engine::kSemiNaive);
      ASSERT_TRUE(lhs.ok());
      ASSERT_TRUE(rhs.ok());
      core::PredId q = input.preds().Find("q");
      EXPECT_EQ(lhs->Unary(q), rhs->Unary(q)) << text;
    }
  }
}

}  // namespace
}  // namespace mdatalog::tmnf
