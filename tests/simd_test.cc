// The SIMD NodeSet kernels against their scalar oracle. The dispatch
// contract is that AVX2 and scalar agree bit for bit on every operation and
// every length (including the scalar tail lengths the vector loop doesn't
// cover), so these are randomized property tests: same inputs through both
// implementations, equal outputs required. On hosts without AVX2 the two
// sides are the same code and the tests degenerate to self-consistency.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/nodeset.h"
#include "src/core/simd_kernels.h"
#include "src/util/bits.h"
#include "src/util/rng.h"

namespace {

using namespace mdatalog;
using core::simd::ForceScalar;

/// Pins the scalar kernels for one scope; restores detection on exit.
struct ScalarGuard {
  ScalarGuard() { ForceScalar(true); }
  ~ScalarGuard() { ForceScalar(false); }
};

std::vector<uint64_t> RandomWords(util::Rng& rng, size_t n, double density) {
  std::vector<uint64_t> w(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    for (int b = 0; b < 64; ++b) {
      if (rng.Chance(static_cast<uint64_t>(density * 1000), 1000)) {
        v |= uint64_t{1} << b;
      }
    }
    w[i] = v;
  }
  return w;
}

// Word counts straddling every vector-loop boundary: 0, sub-vector, exact
// multiples of the 4-word stride, and stride±tail.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65,
                           127, 128, 129, 1000, 2048, 2049};

TEST(SimdKernelTest, AssignOpsMatchScalarOracle) {
  util::Rng rng(42);
  for (size_t n : kLengths) {
    for (double density : {0.0, 0.01, 0.5, 1.0}) {
      const std::vector<uint64_t> dst0 = RandomWords(rng, n, density);
      const std::vector<uint64_t> src = RandomWords(rng, n, 1.0 - density);

      for (int op = 0; op < 3; ++op) {
        std::vector<uint64_t> want = dst0, got = dst0;
        int64_t want_count, got_count;
        {
          ScalarGuard scalar;
          want_count = op == 0 ? core::simd::OrAssignCount(want.data(),
                                                           src.data(), n)
                     : op == 1 ? core::simd::AndAssignCount(want.data(),
                                                            src.data(), n)
                               : core::simd::AndNotAssignCount(want.data(),
                                                               src.data(), n);
        }
        got_count = op == 0 ? core::simd::OrAssignCount(got.data(), src.data(),
                                                        n)
                  : op == 1 ? core::simd::AndAssignCount(got.data(),
                                                         src.data(), n)
                            : core::simd::AndNotAssignCount(got.data(),
                                                            src.data(), n);
        EXPECT_EQ(want, got) << "op " << op << " n " << n;
        EXPECT_EQ(want_count, got_count) << "op " << op << " n " << n;
      }
    }
  }
}

TEST(SimdKernelTest, CountAndFindFirstMatchScalarOracle) {
  util::Rng rng(43);
  for (size_t n : kLengths) {
    for (double density : {0.0, 0.004, 0.3}) {
      const std::vector<uint64_t> w = RandomWords(rng, n, density);
      int64_t want_count, want_first;
      {
        ScalarGuard scalar;
        want_count = core::simd::Count(w.data(), n);
        want_first = core::simd::FindFirst(w.data(), n);
      }
      EXPECT_EQ(want_count, core::simd::Count(w.data(), n)) << n;
      EXPECT_EQ(want_first, core::simd::FindFirst(w.data(), n)) << n;
    }
  }
}

TEST(SimdKernelTest, FindFirstLocatesSingleBitAnywhere) {
  // One bit at every word/offset combination of a mid-size array.
  const size_t n = 21;
  for (size_t wi = 0; wi < n; ++wi) {
    for (int b : {0, 1, 31, 63}) {
      std::vector<uint64_t> w(n, 0);
      w[wi] = uint64_t{1} << b;
      const int64_t want = static_cast<int64_t>(wi) * 64 + b;
      EXPECT_EQ(core::simd::FindFirst(w.data(), n), want);
      ScalarGuard scalar;
      EXPECT_EQ(core::simd::FindFirst(w.data(), n), want);
    }
  }
  std::vector<uint64_t> zeros(n, 0);
  EXPECT_EQ(core::simd::FindFirst(zeros.data(), n), -1);
  EXPECT_EQ(core::simd::FindFirst(zeros.data(), 0), -1);
}

TEST(SimdKernelTest, ForceScalarFlipsDispatch) {
  // Whatever the host supports, ForceScalar(true) must pin "scalar" and
  // ForceScalar(false) must restore the detected implementation.
  const std::string detected = core::simd::ActiveKernelName();
  ForceScalar(true);
  EXPECT_STREQ(core::simd::ActiveKernelName(), "scalar");
  EXPECT_FALSE(core::simd::Avx2Active());
  ForceScalar(false);
  EXPECT_EQ(core::simd::ActiveKernelName(), detected);
}

// ---------------------------------------------------------------------------
// NodeSet-level properties (the kernels as the engine uses them)
// ---------------------------------------------------------------------------

core::NodeSet RandomSet(util::Rng& rng, int32_t domain, uint32_t fill_permil) {
  core::NodeSet s(domain);
  for (int32_t i = 0; i < domain; ++i) {
    if (rng.Chance(fill_permil, 1000)) s.Insert(i);
  }
  return s;
}

TEST(SimdKernelTest, NodeSetAlgebraMatchesPerElementDefinition) {
  util::Rng rng(44);
  for (int32_t domain : {1, 63, 64, 65, 257, 4096, 10000}) {
    const core::NodeSet a = RandomSet(rng, domain, 300);
    const core::NodeSet b = RandomSet(rng, domain, 300);

    core::NodeSet un = a, in = a, diff = a;
    un.UnionWith(b);
    in.IntersectWith(b);
    diff.DifferenceWith(b);

    int64_t un_count = 0, in_count = 0, diff_count = 0;
    for (int32_t i = 0; i < domain; ++i) {
      const bool ia = a.Contains(i), ib = b.Contains(i);
      EXPECT_EQ(un.Contains(i), ia || ib);
      EXPECT_EQ(in.Contains(i), ia && ib);
      EXPECT_EQ(diff.Contains(i), ia && !ib);
      un_count += (ia || ib);
      in_count += (ia && ib);
      diff_count += (ia && !ib);
    }
    // The fused popcounts must agree with the per-element truth.
    EXPECT_EQ(un.count(), un_count);
    EXPECT_EQ(in.count(), in_count);
    EXPECT_EQ(diff.count(), diff_count);
    EXPECT_EQ(diff.FindFirst(), diff.empty() ? -1 : diff.ToVector().front());
  }
}

TEST(SimdKernelTest, NodeSetAssignWordsLoadsBulkBitArrays) {
  util::Rng rng(45);
  const int32_t domain = 1000;
  const core::NodeSet src = RandomSet(rng, domain, 412);

  core::NodeSet dst;
  dst.AssignWords(src.words(), domain);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(dst.count(), src.count());
  EXPECT_EQ(dst.ToVector(), src.ToVector());
}

}  // namespace
