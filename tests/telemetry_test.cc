// The observability layer (src/telemetry/): the lock-free metrics registry,
// request-scoped trace spans, and the exporters, plus their wiring through
// the serving runtime. The two load-bearing properties pinned here:
//
//  * histogram linearizability-by-merge — concurrent recorders striped
//    across threads must produce exactly the snapshot a single-threaded
//    oracle computes from the same multiset of values (runs under TSan via
//    the `tsan` label);
//
//  * unwind safety — a request killed mid-pipeline by its deadline leaves a
//    trace whose spans are all closed, properly nested and never leaked,
//    with the terminal status recorded.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/elog/ast.h"
#include "src/html/synthetic.h"
#include "src/runtime/runtime.h"
#include "src/stream/stream_session.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"
#include "src/util/deadline.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;
using telemetry::HistogramSnapshot;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

wrapper::Wrapper CatalogWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  EXPECT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};
  return w;
}

std::string CatalogPage(uint64_t seed, int32_t items) {
  util::Rng rng(seed);
  html::CatalogOptions opts;
  opts.num_items = items;
  opts.with_ads = true;
  return html::ProductCatalogPage(rng, opts);
}

// ---------------------------------------------------------------------------
// Histogram bucketing
// ---------------------------------------------------------------------------

TEST(HistogramBucketTest, BucketsAreContiguousAndMonotone) {
  // Buckets past the one holding int64 max are unreachable (their lower
  // bounds don't fit in int64) — the invariants apply up to `last`.
  const int32_t last =
      HistogramSnapshot::BucketOf(std::numeric_limits<int64_t>::max());
  EXPECT_LT(last, HistogramSnapshot::kNumBuckets);
  // Every bucket's range must start exactly where the previous one ended.
  for (int32_t b = 1; b <= last; ++b) {
    EXPECT_EQ(HistogramSnapshot::BucketLowerBound(b),
              HistogramSnapshot::BucketUpperBound(b - 1))
        << "bucket " << b;
  }
  // Round trip: a bucket's bounds map back to the bucket itself.
  for (int32_t b = 0; b <= last; ++b) {
    const int64_t lo = HistogramSnapshot::BucketLowerBound(b);
    EXPECT_EQ(HistogramSnapshot::BucketOf(lo), b) << "lower of bucket " << b;
    if (b < last) {
      const int64_t hi = HistogramSnapshot::BucketUpperBound(b);
      EXPECT_EQ(HistogramSnapshot::BucketOf(hi - 1), b)
          << "upper of bucket " << b;
    }
  }
  // Extremes stay in range.
  EXPECT_EQ(HistogramSnapshot::BucketOf(0), 0);
  EXPECT_EQ(HistogramSnapshot::BucketOf(-5), 0);  // clamps
}

TEST(HistogramBucketTest, QuantileErrorIsBoundedByBucketWidth) {
  // 4 sub-buckets per octave bound the relative bucket width at 25%; the
  // percentile estimate for a point mass must land within that.
  telemetry::Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1'200'000);  // "p99 is ~1.2ms"
  const HistogramSnapshot snap = h.Snapshot();
  for (double q : {0.5, 0.9, 0.99}) {
    const int64_t est = snap.Percentile(q);
    EXPECT_GE(est, 1'200'000 * 3 / 4) << q;
    EXPECT_LE(est, 1'200'000 * 5 / 4) << q;
  }
  EXPECT_EQ(snap.max, 1'200'000);
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, int64_t{1'200'000} * 1000);
}

// ---------------------------------------------------------------------------
// Concurrent recording vs a single-thread oracle (TSan-labeled)
// ---------------------------------------------------------------------------

TEST(MetricsConcurrencyTest, ConcurrentRecordersMatchSingleThreadOracle) {
  // Deterministic per-thread value sequences (no wall clock, no races in the
  // expectation): thread t records F(t, i) for i in [0, kPerThread).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  const auto value = [](int t, int i) {
    // Spread across many octaves, including 0 and sub-kSub smalls.
    return (static_cast<int64_t>(i) * 2654435761u + t * 40503u) %
           (int64_t{1} << ((i % 40) + 1));
  };

  telemetry::MetricsRegistry registry;
  telemetry::Histogram* hist = registry.GetHistogram("test.latency");
  telemetry::Counter* counter = registry.GetCounter("test.events");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Record(value(t, i));
        counter->Add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // The oracle folds the same multiset single-threaded.
  HistogramSnapshot oracle;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const int64_t v = value(t, i);
      ++oracle.counts[HistogramSnapshot::BucketOf(v)];
      ++oracle.count;
      oracle.sum += v;
      oracle.max = std::max(oracle.max, v);
    }
  }

  const HistogramSnapshot got = hist->Snapshot();
  EXPECT_EQ(got.count, oracle.count);
  EXPECT_EQ(got.sum, oracle.sum);
  EXPECT_EQ(got.max, oracle.max);
  EXPECT_EQ(got.counts, oracle.counts);
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, SnapshotMergeIsBucketwiseAddition) {
  telemetry::Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(i * 17);
  for (int i = 0; i < 50; ++i) b.Record(i * 1000);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());

  telemetry::Histogram both;
  for (int i = 0; i < 100; ++i) both.Record(i * 17);
  for (int i = 0; i < 50; ++i) both.Record(i * 1000);
  const HistogramSnapshot expected = both.Snapshot();
  EXPECT_EQ(merged.counts, expected.counts);
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.max, expected.max);
}

// ---------------------------------------------------------------------------
// Trace spans: nesting, RAII, the untraced fast path
// ---------------------------------------------------------------------------

TEST(TraceTest, SpansNestAndCloseInLifoOrder) {
  telemetry::TraceContext trace("test");
  {
    telemetry::TraceSpan outer(&trace, "outer");
    {
      telemetry::TraceSpan inner(&trace, "inner");
      telemetry::TraceSpan sibling_after(&trace, "deep");
    }
    telemetry::TraceSpan second(&trace, "second");
  }
  trace.Close();

  ASSERT_EQ(trace.spans().size(), 4u);
  EXPECT_EQ(trace.open_spans(), 0);
  EXPECT_STREQ(trace.spans()[0].name, "outer");
  EXPECT_EQ(trace.spans()[0].parent, -1);
  EXPECT_EQ(trace.spans()[0].depth, 0);
  EXPECT_STREQ(trace.spans()[1].name, "inner");
  EXPECT_EQ(trace.spans()[1].parent, 0);
  EXPECT_EQ(trace.spans()[1].depth, 1);
  EXPECT_STREQ(trace.spans()[2].name, "deep");
  EXPECT_EQ(trace.spans()[2].parent, 1);
  EXPECT_EQ(trace.spans()[2].depth, 2);
  EXPECT_STREQ(trace.spans()[3].name, "second");
  EXPECT_EQ(trace.spans()[3].parent, 0);
  for (const telemetry::SpanRecord& s : trace.spans()) {
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
  }
}

TEST(TraceTest, NullContextSpanIsANoOp) {
  telemetry::TraceSpan span(nullptr, "nothing");
  EXPECT_FALSE(span);
  span.Tag("ignored");
  span.Value("ignored", 1);  // must not crash, must not allocate
}

TEST(TraceTest, SpanCapCountsDropsAndStaysBalanced) {
  telemetry::TraceContext trace("test");
  for (size_t i = 0; i < telemetry::TraceContext::kMaxSpans + 100; ++i) {
    telemetry::TraceSpan span(&trace, "tick");
  }
  trace.Close();
  EXPECT_EQ(trace.spans().size(), telemetry::TraceContext::kMaxSpans);
  EXPECT_EQ(trace.dropped_spans(), 100);
  EXPECT_EQ(trace.open_spans(), 0);
}

// ---------------------------------------------------------------------------
// Runtime wiring
// ---------------------------------------------------------------------------

TEST(RuntimeTelemetryTest, CountersPreservedNameForNameWhenDisabled) {
  runtime::RuntimeOptions options;
  options.telemetry.enabled = false;
  runtime::WrapperRuntime rt(options);
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());
  const std::string page = CatalogPage(7, 10);
  ASSERT_TRUE(rt.Wrap(*handle, page).ok());
  ASSERT_TRUE(rt.Wrap(*handle, page).ok());  // memo hit: not a page wrapped

  // stats() must stay exact with telemetry off: counters always record.
  const runtime::RuntimeStats stats = rt.stats();
  EXPECT_EQ(stats.pages_wrapped, 1);
  EXPECT_EQ(stats.grounded_evals + stats.seminaive_evals + stats.native_evals,
            1);
  EXPECT_EQ(stats.memo_hits, 1);
  // Tracing is off: no retained traces, no per-stage histograms.
  EXPECT_TRUE(rt.telemetry().RecentTraces().empty());
  const std::string prom = rt.ExportPrometheus();
  EXPECT_NE(prom.find("mdatalog_runtime_pages_wrapped_total 1"),
            std::string::npos);
  EXPECT_EQ(prom.find("mdatalog_stage_"), std::string::npos);
}

TEST(RuntimeTelemetryTest, TracedWrapRecordsPipelineStages) {
  runtime::WrapperRuntime rt;  // telemetry on by default
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());
  const std::string page = CatalogPage(11, 12);
  ASSERT_TRUE(rt.Wrap(*handle, page).ok());

  const auto traces = rt.telemetry().RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  const telemetry::FinishedTrace& t = traces[0];
  EXPECT_STREQ(t.kind, "wrap");
  EXPECT_EQ(t.status, util::StatusCode::kOk);
  EXPECT_EQ(t.page_bytes, static_cast<int64_t>(page.size()));
  EXPECT_GT(t.nodes, 0);

  const auto has_span = [&t](const char* name) {
    return std::any_of(t.spans.begin(), t.spans.end(),
                       [name](const telemetry::SpanRecord& s) {
                         return std::string_view(s.name) == name;
                       });
  };
  EXPECT_TRUE(has_span("hash"));
  EXPECT_TRUE(has_span("memo.lookup"));
  EXPECT_TRUE(has_span("doc.fetch"));
  EXPECT_TRUE(has_span("html.parse"));
  EXPECT_TRUE(has_span("edb.materialize") || has_span("eval.grounded") ||
              has_span("eval.native"));
  EXPECT_TRUE(has_span("output.build"));
  // Nested spans sit inside their parents.
  for (const telemetry::SpanRecord& s : t.spans) {
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
    if (s.parent >= 0) {
      const telemetry::SpanRecord& p = t.spans[s.parent];
      EXPECT_GE(s.start_ns, p.start_ns) << s.name;
      EXPECT_LE(s.end_ns, p.end_ns) << s.name;
      EXPECT_EQ(s.depth, p.depth + 1) << s.name;
    }
  }
  // The fold produced stage histograms and the per-kind request histogram.
  const std::string prom = rt.ExportPrometheus();
  EXPECT_NE(prom.find("mdatalog_stage_doc_fetch_ns"), std::string::npos);
  EXPECT_NE(prom.find("mdatalog_request_wrap_ns"), std::string::npos);
}

TEST(RuntimeTelemetryTest, DeadlineUnwindClosesEverySpan) {
  // A page big enough that tokenization/evaluation outlives a 1ms deadline
  // on any machine (the existing stream deadline test uses the same shape).
  std::string page = "<html><body>";
  const std::string filler(512, 'x');
  for (int i = 0; i < 4000; ++i) page += "<div id=\"" + filler + "\">t</div>";
  page += "</body></html>";

  runtime::WrapperRuntime rt;
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  // Caller-owned trace via RequestOptions::trace — the runtime records into
  // it and closes it, the test keeps it.
  telemetry::TraceContext trace("wrap");
  runtime::RequestOptions request;
  request.deadline = util::Deadline::After(std::chrono::milliseconds(1));
  request.trace = &trace;
  util::Result<std::string> result = rt.Wrap(*handle, page, request);
  // Either the deadline fired mid-pipeline (expected) or a fast machine
  // finished the page; the unwind invariants below hold in both cases.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
    EXPECT_EQ(trace.status(), util::StatusCode::kDeadlineExceeded);
  }
  // All spans closed, none leaked open, nesting intact — even though the
  // deadline unwound the pipeline from an arbitrary depth.
  EXPECT_EQ(trace.open_spans(), 0);
  EXPECT_GT(trace.end_ns(), 0);
  for (const telemetry::SpanRecord& s : trace.spans()) {
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
    if (s.parent >= 0) {
      EXPECT_EQ(s.depth, trace.spans()[s.parent].depth + 1) << s.name;
    }
  }
}

TEST(RuntimeTelemetryTest, StreamSessionTraceClosesOnDeadline) {
  std::string page = "<html><body>";
  const std::string filler(512, 'x');
  for (int i = 0; i < 4000; ++i) page += "<div id=\"" + filler + "\">t</div>";
  page += "</body></html>";

  runtime::WrapperRuntime rt;
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  telemetry::TraceContext trace("stream");
  runtime::RequestOptions request;
  request.deadline = util::Deadline::After(std::chrono::milliseconds(1));
  request.trace = &trace;
  auto session = rt.SubmitStream({.wrapper = *handle, .options = request}, {});
  if (session.ok()) {
    util::Status s;
    for (int i = 0; i < 64 && s.ok(); ++i) s = (*session)->Feed(page);
    if (s.ok()) {
      auto xml = (*session)->Finish();  // settles the trace either way
    }
  }
  EXPECT_EQ(trace.open_spans(), 0);
  for (const telemetry::SpanRecord& s : trace.spans()) {
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
  }
}

TEST(RuntimeTelemetryTest, TraceRingIsBoundedAndSamplingThins) {
  runtime::RuntimeOptions options;
  options.telemetry.trace_ring_capacity = 4;
  options.result_memo.byte_budget = 0;  // every request evaluates
  runtime::WrapperRuntime rt(options);
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rt.Wrap(*handle, CatalogPage(100 + i, 3)).ok());
  }
  EXPECT_EQ(rt.telemetry().RecentTraces().size(), 4u);

  runtime::RuntimeOptions sampled;
  sampled.telemetry.trace_sample_every = 4;
  sampled.result_memo.byte_budget = 0;
  runtime::WrapperRuntime rt2(sampled);
  auto handle2 = rt2.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle2.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rt2.Wrap(*handle2, CatalogPage(200 + i, 3)).ok());
  }
  EXPECT_EQ(rt2.telemetry().RecentTraces().size(), 2u);  // 1 in 4 of 8
  // Sampling gates tracing only; the serving counters stay exact.
  EXPECT_EQ(rt2.stats().pages_wrapped, 8);
}

// ---------------------------------------------------------------------------
// RequestOptions::trace lifetime contract
// ---------------------------------------------------------------------------

TEST(TraceLifetimeTest, StreamSessionHoldsAnInflightReferenceForItsLifetime) {
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  telemetry::TraceContext trace("stream");
  EXPECT_EQ(trace.inflight_requests(), 0);
  runtime::RequestOptions request;
  request.trace = &trace;
  auto session = rt.SubmitStream({.wrapper = *handle, .options = request}, {});
  ASSERT_TRUE(session.ok());
  // The session references the caller's trace until destroyed — the count
  // is what the trace's destructor asserts on in debug builds.
  EXPECT_EQ(trace.inflight_requests(), 1);
  ASSERT_TRUE((*session)->Feed(CatalogPage(31, 3)).ok());
  ASSERT_TRUE((*session)->Finish().ok());
  EXPECT_EQ(trace.inflight_requests(), 1);  // finished ≠ destroyed
  session->reset();
  EXPECT_EQ(trace.inflight_requests(), 0);  // now safe to destroy the trace
}

TEST(TraceLifetimeTest, SubmitReleasesTheTraceBeforeTheFutureResolves) {
  runtime::RuntimeOptions options;
  options.num_threads = 1;
  runtime::WrapperRuntime rt(options);
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  telemetry::TraceContext trace("wrap");
  runtime::RequestOptions request;
  request.trace = &trace;
  const std::string page = CatalogPage(32, 4);
  auto future = rt.Submit({runtime::PageRef::View(page), *handle, request});
  ASSERT_TRUE(future.get().ok());
  // The release is sequenced strictly before the future becomes ready, so
  // after get() the caller may destroy the trace immediately.
  EXPECT_EQ(trace.inflight_requests(), 0);
  EXPECT_FALSE(trace.spans().empty());
}

TEST(TraceLifetimeDeathTest, DestroyingATraceWithInflightRequestsAsserts) {
#ifdef NDEBUG
  GTEST_SKIP() << "lifetime assertion compiles out under NDEBUG";
#else
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        telemetry::TraceContext trace("wrap");
        trace.AddInflightRequest();
        // Destructor fires with the count still at 1 — the use-after-free
        // setup the assertion exists to catch.
      },
      "TraceContext destroyed while an async request");
#endif
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ExportTest, PrometheusShapesAreWellFormed) {
  telemetry::MetricsRegistry registry;
  registry.GetCounter("runtime.pages_wrapped")->Add(42);
  registry.GetGauge("result_memo.bytes")->Set(1024);
  telemetry::Histogram* h = registry.GetHistogram("stage.hash.ns");
  h->Record(100);
  h->Record(200);

  const std::string prom = telemetry::ToPrometheus(registry.Snapshot());
  EXPECT_NE(prom.find("# TYPE mdatalog_runtime_pages_wrapped_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("mdatalog_runtime_pages_wrapped_total 42"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE mdatalog_result_memo_bytes gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("mdatalog_result_memo_bytes 1024"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE mdatalog_stage_hash_ns histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("mdatalog_stage_hash_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("mdatalog_stage_hash_ns_sum 300"), std::string::npos);
  EXPECT_NE(prom.find("mdatalog_stage_hash_ns_count 2"), std::string::npos);
}

TEST(ExportTest, JsonCarriesTracesAndScatter) {
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(rt.Wrap(*handle, CatalogPage(5, 8)).ok());

  const std::string json = rt.ExportJson();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"traces\":["), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"wrap\""), std::string::npos);
  EXPECT_NE(json.find("\"scatter\":[{\"nodes\":"), std::string::npos);
  EXPECT_NE(json.find("\"runtime.pages_wrapped\":1"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ExportTest, BreakdownIndentsByDepth) {
  telemetry::Telemetry tel;
  auto trace = tel.StartTrace("wrap");
  ASSERT_NE(trace, nullptr);
  {
    telemetry::TraceSpan outer(trace.get(), "doc.fetch");
    outer.Tag("parse");
    telemetry::TraceSpan inner(trace.get(), "html.parse");
  }
  tel.FinishTrace(std::move(trace), util::StatusCode::kOk);
  const auto traces = tel.RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  const std::string breakdown = telemetry::FormatBreakdown(traces[0]);
  EXPECT_NE(breakdown.find("wrap "), std::string::npos);
  EXPECT_NE(breakdown.find("status=OK"), std::string::npos);
  EXPECT_NE(breakdown.find("\n  doc.fetch "), std::string::npos);
  EXPECT_NE(breakdown.find("[parse]"), std::string::npos);
  EXPECT_NE(breakdown.find("\n    html.parse "), std::string::npos);
}

TEST(TelemetryTest, SlowRequestLogIsThresholdedAndBounded) {
  telemetry::TelemetryOptions options;
  options.slow_request_ns = 0;  // everything is "slow"
  options.slow_log_capacity = 3;
  telemetry::Telemetry tel(options);
  for (int i = 0; i < 10; ++i) {
    auto trace = tel.StartTrace("wrap");
    ASSERT_NE(trace, nullptr);
    tel.FinishTrace(std::move(trace), util::StatusCode::kOk);
  }
  EXPECT_EQ(tel.SlowRequestLog().size(), 3u);
  EXPECT_EQ(tel.registry().GetCounter("trace.slow_requests")->Value(), 10);

  telemetry::TelemetryOptions quiet;
  quiet.slow_request_ns = std::numeric_limits<int64_t>::max();
  telemetry::Telemetry never(quiet);
  auto trace = never.StartTrace("wrap");
  never.FinishTrace(std::move(trace), util::StatusCode::kOk);
  EXPECT_TRUE(never.SlowRequestLog().empty());
}

}  // namespace
