#include <gtest/gtest.h>

#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/html/tokenizer.h"
#include "src/tree/serialize.h"
#include "src/util/rng.h"

namespace mdatalog::html {
namespace {

using tree::NodeId;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(TokenizerTest, BasicTagsAndText) {
  auto tokens = Tokenize("<p>Hello</p>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, Token::Type::kStartTag);
  EXPECT_EQ(tokens[0].data, "p");
  EXPECT_EQ(tokens[1].type, Token::Type::kText);
  EXPECT_EQ(tokens[1].data, "Hello");
  EXPECT_EQ(tokens[2].type, Token::Type::kEndTag);
}

TEST(TokenizerTest, TagNamesAreLowercased) {
  auto tokens = Tokenize("<DIV CLASS=Big></DIV>");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].data, "div");
  ASSERT_EQ(tokens[0].attrs.size(), 1u);
  EXPECT_EQ(tokens[0].attrs[0].name, "class");
  EXPECT_EQ(tokens[0].attrs[0].value, "Big");  // values keep their case
}

TEST(TokenizerTest, AttributeQuoting) {
  auto tokens =
      Tokenize("<a href=\"x&amp;y\" title='hi there' data-k=v checked>");
  ASSERT_EQ(tokens.size(), 1u);
  const auto& attrs = tokens[0].attrs;
  ASSERT_GE(attrs.size(), 4u);
  EXPECT_EQ(attrs[0].name, "href");
  EXPECT_EQ(attrs[0].value, "x&y");
  EXPECT_EQ(attrs[1].name, "title");
  EXPECT_EQ(attrs[1].value, "hi there");
  EXPECT_EQ(attrs[2].name, "data-k");
  EXPECT_EQ(attrs[2].value, "v");
  EXPECT_EQ(attrs[3].name, "checked");
  EXPECT_EQ(attrs[3].value, "");
}

TEST(TokenizerTest, SelfClosingAndComments) {
  auto tokens = Tokenize("<br/><!-- note --><img src=x />");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].self_closing);
  EXPECT_EQ(tokens[1].type, Token::Type::kComment);
  EXPECT_EQ(tokens[1].data, " note ");
  EXPECT_TRUE(tokens[2].self_closing);
}

TEST(TokenizerTest, DoctypeAndEntities) {
  auto tokens = Tokenize("<!DOCTYPE html><p>a &lt; b &amp; c &#65;</p>");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, Token::Type::kDoctype);
  EXPECT_EQ(tokens[2].data, "a < b & c A");
}

TEST(TokenizerTest, ScriptContentIsRaw) {
  auto tokens = Tokenize("<script>if (a < b) { x(); }</script><p>hi</p>");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].data, "script");
  // The inequality sign did not open a tag.
  bool has_p = false;
  for (const auto& t : tokens) {
    if (t.type == Token::Type::kStartTag && t.data == "p") has_p = true;
  }
  EXPECT_TRUE(has_p);
}

TEST(TokenizerTest, StrayAngleBracketIsText) {
  auto tokens = Tokenize("<p>1 < 2</p>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].data, "1 < 2");
}

TEST(TokenizerTest, WhitespaceOnlyTextIsDropped) {
  auto tokens = Tokenize("<div>\n  \t<p>x</p>\n</div>");
  for (const auto& t : tokens) {
    if (t.type == Token::Type::kText) {
      EXPECT_EQ(t.data, "x");
    }
  }
}

TEST(DecodeEntitiesTest, UnknownEntitiesPassThrough) {
  EXPECT_EQ(DecodeEntities("&bogus; &amp; &#9999;"), "&bogus; & &#9999;");
  EXPECT_EQ(DecodeEntities("&nbsp;"), " ");
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, BuildsNestedTree) {
  auto doc = ParseHtml("<html><body><p>hi</p></body></html>");
  ASSERT_TRUE(doc.ok());
  const tree::Tree& t = doc->tree();
  EXPECT_EQ(t.label_name(t.root()), "html");
  NodeId body = t.first_child(t.root());
  EXPECT_EQ(t.label_name(body), "body");
  NodeId p = t.first_child(body);
  EXPECT_EQ(t.label_name(p), "p");
  NodeId text = t.first_child(p);
  EXPECT_EQ(t.label_name(text), "#text");
  EXPECT_EQ(t.text(text), "hi");
}

TEST(ParserTest, SyntheticRootForFragments) {
  auto doc = ParseHtml("<p>a</p><p>b</p>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->tree().label_name(0), "#document");
  EXPECT_EQ(doc->tree().NumChildren(0), 2);
}

TEST(ParserTest, VoidElementsDoNotNest) {
  auto doc = ParseHtml("<div><br><img src=x><span>y</span></div>");
  ASSERT_TRUE(doc.ok());
  const tree::Tree& t = doc->tree();
  EXPECT_EQ(t.NumChildren(t.root()), 3);  // br, img, span all siblings
}

TEST(ParserTest, AutoCloseListItems) {
  auto doc = ParseHtml("<ul><li>a<li>b<li>c</ul>");
  ASSERT_TRUE(doc.ok());
  const tree::Tree& t = doc->tree();
  EXPECT_EQ(t.label_name(t.root()), "ul");
  EXPECT_EQ(t.NumChildren(t.root()), 3);
}

TEST(ParserTest, AutoCloseTableCellsAndRows) {
  auto doc = ParseHtml("<table><tr><td>1<td>2<tr><td>3</table>");
  ASSERT_TRUE(doc.ok());
  const tree::Tree& t = doc->tree();
  std::vector<NodeId> rows = t.Children(t.root());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(t.NumChildren(rows[0]), 2);
  EXPECT_EQ(t.NumChildren(rows[1]), 1);
}

TEST(ParserTest, NestedListsKeepNesting) {
  auto doc = ParseHtml("<ul><li>a<ul><li>a1<li>a2</ul></li><li>b</ul>");
  ASSERT_TRUE(doc.ok());
  const tree::Tree& t = doc->tree();
  std::vector<NodeId> top = t.Children(t.root());
  ASSERT_EQ(top.size(), 2u);
  // First li contains text + inner ul with two li's.
  std::vector<NodeId> inner = t.Children(top[0]);
  ASSERT_EQ(inner.size(), 2u);
  EXPECT_EQ(t.label_name(inner[1]), "ul");
  EXPECT_EQ(t.NumChildren(inner[1]), 2);
}

TEST(ParserTest, UnmatchedEndTagIgnored) {
  auto doc = ParseHtml("<div><p>x</span></p></div>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(tree::ToDebugString(doc->tree()), "div(p(#text))");
}

TEST(ParserTest, UnclosedTagsCloseAtEof) {
  auto doc = ParseHtml("<div><p>x");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(tree::ToDebugString(doc->tree()), "div(p(#text))");
}

TEST(ParserTest, EmptyInputFails) {
  EXPECT_FALSE(ParseHtml("").ok());
  EXPECT_FALSE(ParseHtml("   \n  ").ok());
  EXPECT_FALSE(ParseHtml("<!-- only a comment -->").ok());
}

TEST(ParserTest, AttributesAccessible) {
  auto doc = ParseHtml("<div class=main id=top><a href=\"/x\">l</a></div>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetAttr(0, "class"), "main");
  EXPECT_EQ(doc->GetAttr(0, "id"), "top");
  EXPECT_TRUE(doc->HasAttr(0, "id"));
  EXPECT_FALSE(doc->HasAttr(0, "style"));
  std::vector<NodeId> with_href = doc->NodesWithAttr("href", "/x");
  ASSERT_EQ(with_href.size(), 1u);
  EXPECT_EQ(doc->tree().label_name(with_href[0]), "a");
}

TEST(ParserTest, ProjectAttributeIntoLabels) {
  auto doc = ParseHtml("<div class=main><span class=price>$5</span></div>");
  ASSERT_TRUE(doc.ok());
  tree::Tree t = ProjectAttributeIntoLabels(*doc, "class");
  EXPECT_EQ(t.label_name(t.root()), "div@main");
  EXPECT_EQ(t.label_name(t.first_child(t.root())), "span@price");
}

// ---------------------------------------------------------------------------
// Synthetic pages
// ---------------------------------------------------------------------------

TEST(SyntheticTest, CatalogPageStructure) {
  util::Rng rng(1);
  CatalogOptions opts;
  opts.num_items = 7;
  auto doc = ParseHtml(ProductCatalogPage(rng, opts));
  ASSERT_TRUE(doc.ok());
  // Count rows with class=item.
  std::vector<NodeId> items;
  for (NodeId n = 0; n < doc->tree().size(); ++n) {
    if (doc->tree().label_name(n) == "tr" &&
        doc->GetAttr(n, "class") == "item") {
      items.push_back(n);
    }
  }
  EXPECT_EQ(items.size(), 7u);
  // Each item row has name/price/seller cells.
  for (NodeId row : items) {
    std::vector<NodeId> cells = doc->tree().Children(row);
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(doc->GetAttr(cells[0], "class"), "name");
    EXPECT_EQ(doc->GetAttr(cells[1], "class"), "price");
    EXPECT_EQ(doc->GetAttr(cells[2], "class"), "seller");
    EXPECT_FALSE(doc->tree().SubtreeText(cells[1]).empty());
  }
}

TEST(SyntheticTest, CatalogAdsAddRows) {
  util::Rng rng(2);
  CatalogOptions opts;
  opts.num_items = 9;
  opts.with_ads = true;
  auto doc = ParseHtml(ProductCatalogPage(rng, opts));
  ASSERT_TRUE(doc.ok());
  int32_t ads = 0;
  for (NodeId n = 0; n < doc->tree().size(); ++n) {
    if (doc->GetAttr(n, "class") == "ad") ++ads;
  }
  EXPECT_EQ(ads, 2);  // after items 3 and 6
}

TEST(SyntheticTest, AltLayoutKeepsItems) {
  util::Rng rng(3);
  CatalogOptions opts;
  opts.num_items = 5;
  opts.alt_layout = true;
  auto doc = ParseHtml(ProductCatalogPage(rng, opts));
  ASSERT_TRUE(doc.ok());
  int32_t items = 0;
  for (NodeId n = 0; n < doc->tree().size(); ++n) {
    if (doc->GetAttr(n, "class") == "item") ++items;
  }
  EXPECT_EQ(items, 5);
}

TEST(SyntheticTest, NewsIndexArticles) {
  util::Rng rng(4);
  auto doc = ParseHtml(NewsIndexPage(rng, 12));
  ASSERT_TRUE(doc.ok());
  int32_t articles = 0;
  for (NodeId n = 0; n < doc->tree().size(); ++n) {
    if (doc->GetAttr(n, "class") == "article") ++articles;
  }
  EXPECT_EQ(articles, 12);
}

TEST(SyntheticTest, NestedBoardDepth) {
  util::Rng rng(5);
  auto doc = ParseHtml(NestedBoardPage(rng, 3, 2));
  ASSERT_TRUE(doc.ok());
  // The deepest li chain passes through 4 levels of ul.
  int32_t max_ul_depth = 0;
  for (NodeId n = 0; n < doc->tree().size(); ++n) {
    if (doc->tree().label_name(n) != "ul") continue;
    int32_t d = 0;
    for (NodeId p = n; p != tree::kNoNode; p = doc->tree().parent(p)) {
      if (doc->tree().label_name(p) == "ul") ++d;
    }
    max_ul_depth = std::max(max_ul_depth, d);
  }
  EXPECT_EQ(max_ul_depth, 4);
}

TEST(SyntheticTest, GeneratorsAreDeterministic) {
  util::Rng a(42), b(42);
  CatalogOptions opts;
  EXPECT_EQ(ProductCatalogPage(a, opts), ProductCatalogPage(b, opts));
}

}  // namespace
}  // namespace mdatalog::html
