#include <gtest/gtest.h>

#include "src/core/ast.h"
#include "src/core/parser.h"
#include "src/core/validate.h"

namespace mdatalog::core {
namespace {

TEST(PredicateTableTest, InternAndConflict) {
  PredicateTable t;
  auto p = t.Intern("foo", 1);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(t.Arity(*p), 1);
  EXPECT_EQ(t.Name(*p), "foo");
  auto again = t.Intern("foo", 1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *p);
  auto conflict = t.Intern("foo", 2);
  EXPECT_FALSE(conflict.ok());
  EXPECT_EQ(t.Find("foo"), *p);
  EXPECT_EQ(t.Find("bar"), -1);
}

TEST(AstTest, MakeRuleInventsVarNames) {
  Program p;
  PredId q = p.preds().MustIntern("q", 1);
  PredId r = p.preds().MustIntern("r", 2);
  Rule rule = MakeRule(MakeAtom(q, {Term::Var(0)}),
                       {MakeAtom(r, {Term::Var(0), Term::Var(1)})});
  EXPECT_EQ(rule.num_vars(), 2);
  EXPECT_EQ(rule.var_names[0], "v0");
  EXPECT_EQ(rule.var_names[1], "v1");
}

TEST(AstTest, ToStringFormatsRules) {
  Program p;
  PredId q = p.preds().MustIntern("q", 1);
  PredId fc = p.preds().MustIntern("firstchild", 2);
  PredId la = p.preds().MustIntern("label_a", 1);
  Rule rule = MakeRule(
      MakeAtom(q, {Term::Var(1)}),
      {MakeAtom(fc, {Term::Var(0), Term::Var(1)}), MakeAtom(la, {Term::Var(0)})},
      {"x", "y"});
  p.AddRule(rule);
  EXPECT_EQ(ToString(p, p.rules()[0]),
            "q(y) :- firstchild(x, y), label_a(x).");
}

TEST(AstTest, ToStringConstantsAndPropositional) {
  Program p;
  PredId q = p.preds().MustIntern("q", 1);
  PredId b = p.preds().MustIntern("b", 0);
  p.AddRule(MakeRule(MakeAtom(q, {Term::Const(3)}), {MakeAtom(b, {})}, {}));
  EXPECT_EQ(ToString(p, p.rules()[0]), "q(3) :- b.");
}

TEST(AstTest, IntensionalMaskAndSize) {
  Program p;
  PredId q = p.preds().MustIntern("q", 1);
  PredId leaf = p.preds().MustIntern("leaf", 1);
  p.AddRule(
      MakeRule(MakeAtom(q, {Term::Var(0)}), {MakeAtom(leaf, {Term::Var(0)})}));
  std::vector<bool> mask = p.IntensionalMask();
  EXPECT_TRUE(mask[q]);
  EXPECT_FALSE(mask[leaf]);
  EXPECT_EQ(p.SizeInAtoms(), 2);
}

TEST(ParserTest, ParsesSimpleProgram) {
  auto p = ParseProgram(R"(
    % the even-a seed rule
    b0(X) :- leaf(X).
    c1(X) :- b0(X), label_a(X).  // inline comment
  )");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rules().size(), 2u);
  EXPECT_EQ(ToString(*p, p->rules()[0]), "b0(X) :- leaf(X).");
  EXPECT_EQ(ToString(*p, p->rules()[1]), "c1(X) :- b0(X), label_a(X).");
}

TEST(ParserTest, AcceptsArrowSeparator) {
  auto p = ParseProgram("q(X) <- leaf(X).");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rules().size(), 1u);
}

TEST(ParserTest, ParsesFactsAndConstants) {
  auto p = ParseProgram("start(0). edge(0, 1). q(X) :- edge(0, X).");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rules().size(), 3u);
  EXPECT_TRUE(p->rules()[0].body.empty());
  EXPECT_EQ(p->rules()[1].head.args[1], Term::Const(1));
  EXPECT_EQ(p->rules()[2].body[0].args[0], Term::Const(0));
}

TEST(ParserTest, ParsesPropositionalAtoms) {
  auto p = ParseProgram("b :- q(X). r(X) :- leaf(X), b.");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->preds().Arity(p->preds().Find("b")), 0);
}

TEST(ParserTest, VariableScopePerRule) {
  auto p = ParseProgram("q(X) :- leaf(X). r(X) :- root(X).");
  ASSERT_TRUE(p.ok());
  // Both rules use variable index 0 despite the same name.
  EXPECT_EQ(p->rules()[0].head.args[0], Term::Var(0));
  EXPECT_EQ(p->rules()[1].head.args[0], Term::Var(0));
}

TEST(ParserTest, RejectsMissingDot) {
  EXPECT_FALSE(ParseProgram("q(X) :- leaf(X)").ok());
}

TEST(ParserTest, RejectsArityConflict) {
  auto p = ParseProgram("q(X) :- leaf(X). q(X, Y) :- firstchild(X, Y).");
  EXPECT_FALSE(p.ok());
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseProgram("q(X) :- 3foo(X).").ok());
  EXPECT_FALSE(ParseProgram("(X).").ok());
  EXPECT_FALSE(ParseProgram("q(X :- leaf(X).").ok());
}

TEST(ParserTest, ErrorsMentionPosition) {
  auto p = ParseProgram("q(X) :- leaf(X)\nq(Y) :- root(Y).");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line"), std::string::npos);
}

TEST(ParserTest, ParseProgramWithQuery) {
  auto p = ParseProgramWithQuery("q(X) :- leaf(X).", "q");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->query_pred(), p->preds().Find("q"));
  EXPECT_FALSE(ParseProgramWithQuery("q(X) :- leaf(X).", "nope").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* text =
      "q(X) :- leaf(X), label_a(X).\n"
      "r(Y) :- q(X), firstchild(X, Y).\n";
  auto p1 = ParseProgram(text);
  ASSERT_TRUE(p1.ok());
  auto p2 = ParseProgram(ToString(*p1));
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(ToString(*p1), ToString(*p2));
}

TEST(ValidateTest, SafetyViolation) {
  auto p = ParseProgram("q(X) :- leaf(Y).");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(CheckSafety(*p).ok());
  auto ok = ParseProgram("q(X) :- leaf(X), root(Y).");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(CheckSafety(*ok).ok());
}

TEST(ValidateTest, NonGroundFactIsUnsafe) {
  auto p = ParseProgram("q(X).");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(CheckSafety(*p).ok());
}

TEST(ValidateTest, MonadicCheck) {
  auto p = ParseProgram("q(X, Y) :- firstchild(X, Y).");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(CheckMonadic(*p).ok());
  auto ok = ParseProgram("q(X) :- firstchild(X, Y). b :- q(X).");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(CheckMonadic(*ok).ok());
}

TEST(ValidateTest, TreeSignature) {
  auto p = ParseProgram("q(X) :- child(X, Y), label_td(Y).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(CheckTreeSignature(*p, /*allow_extended=*/true).ok());
  EXPECT_FALSE(CheckTreeSignature(*p, /*allow_extended=*/false).ok());
  auto bad = ParseProgram("q(X) :- edge(X, Y).");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(CheckTreeSignature(*bad).ok());
}

TEST(ValidateTest, ExtensionalPredNames) {
  auto p = ParseProgram("q(X) :- leaf(X), r(X). r(X) :- root(X).");
  ASSERT_TRUE(p.ok());
  std::vector<std::string> names = ExtensionalPredNames(*p);
  EXPECT_EQ(names, (std::vector<std::string>{"leaf", "root"}));
}

TEST(ValidateTest, FindGuard) {
  auto p = ParseProgram(
      "q(X) :- firstchild(X, Y), label_a(Y).\n"
      "r(X) :- q(X), leaf(Y).\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(FindGuard(p->rules()[0]), 0);   // firstchild(X,Y) covers {X,Y}
  EXPECT_EQ(FindGuard(p->rules()[1]), -1);  // no atom covers both X and Y
}

TEST(ValidateTest, ConnectednessTheorem42Graph) {
  auto p = ParseProgram(
      "a(X) :- leaf(X).\n"
      "b(X) :- leaf(X), root(Y).\n"
      "c(X) :- firstchild(X, Y), leaf(Y).\n");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(IsConnectedRule(*p, p->rules()[0]));
  // X and Y are connected by no binary atom -> disconnected.
  EXPECT_FALSE(IsConnectedRule(*p, p->rules()[1]));
  EXPECT_TRUE(IsConnectedRule(*p, p->rules()[2]));
}

TEST(ValidateTest, RuleVarComponents) {
  auto p = ParseProgram(
      "q(X) :- firstchild(X, Y), nextsibling(A, B), leaf(C).");
  ASSERT_TRUE(p.ok());
  std::vector<int32_t> comp = RuleVarComponents(*p, p->rules()[0]);
  ASSERT_EQ(comp.size(), 5u);
  EXPECT_EQ(comp[0], comp[1]);  // X, Y
  EXPECT_EQ(comp[2], comp[3]);  // A, B
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[4]);  // C isolated
  EXPECT_NE(comp[2], comp[4]);
}

TEST(ValidateTest, DatalogLit) {
  // Rule 1: all-monadic body. Rule 2: guarded by firstchild.
  auto lit = ParseProgram(
      "q(X) :- leaf(X), label_a(X).\n"
      "r(Y) :- firstchild(X, Y), q(X).\n");
  ASSERT_TRUE(lit.ok());
  EXPECT_TRUE(IsDatalogLit(*lit));
  // Two binary atoms over three vars: no guard.
  auto notlit =
      ParseProgram("q(X) :- firstchild(X, Y), nextsibling(Y, Z).");
  ASSERT_TRUE(notlit.ok());
  EXPECT_FALSE(IsDatalogLit(*notlit));
}

}  // namespace
}  // namespace mdatalog::core
