#include <gtest/gtest.h>

#include "src/core/examples.h"
#include "src/core/grounder.h"
#include "src/core/parser.h"
#include "src/mso/automaton.h"
#include "src/mso/compile.h"
#include "src/mso/formula.h"
#include "src/mso/to_datalog.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

namespace mdatalog::mso {
namespace {

using tree::Tree;

FormulaPtr MustParse(const std::string& text) {
  auto f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << f.status().ToString() << " in: " << text;
  return *f;
}

// ---------------------------------------------------------------------------
// Formula parsing, printing, free variables
// ---------------------------------------------------------------------------

TEST(FormulaParseTest, AtomsAndConnectives) {
  FormulaPtr f = MustParse("root(x) & ~leaf(x) | firstchild(x, y)");
  EXPECT_EQ(f->kind, Formula::Kind::kOr);
  FormulaPtr g = MustParse("label_a(x) -> x = y");
  EXPECT_EQ(g->kind, Formula::Kind::kImplies);
  EXPECT_EQ(g->children[1]->kind, Formula::Kind::kEq);
}

TEST(FormulaParseTest, QuantifiersByCase) {
  FormulaPtr f = MustParse("exists x. forall Y. (in(x, Y) -> label_a(x))");
  EXPECT_EQ(f->kind, Formula::Kind::kExistsFo);
  EXPECT_EQ(f->children[0]->kind, Formula::Kind::kForallSo);
}

TEST(FormulaParseTest, Errors) {
  EXPECT_FALSE(ParseFormula("").ok());
  EXPECT_FALSE(ParseFormula("unknown(x)").ok());
  EXPECT_FALSE(ParseFormula("in(x, y)").ok());  // y is not a set variable
  EXPECT_FALSE(ParseFormula("root(x").ok());
  EXPECT_FALSE(ParseFormula("exists x root(x)").ok());  // missing '.'
  EXPECT_FALSE(ParseFormula("root(x) garbage").ok());
}

TEST(FormulaParseTest, RoundTrip) {
  for (const char* text :
       {"exists x. forall Y. (in(x, Y) -> label_a(x))",
        "(root(x) & leaf(y)) | x = y", "~(firstchild(x, y))"}) {
    FormulaPtr f1 = MustParse(text);
    FormulaPtr f2 = MustParse(ToString(f1));
    EXPECT_EQ(ToString(f1), ToString(f2));
  }
}

TEST(FormulaTest, FreeVariables) {
  FormulaPtr f = MustParse("exists y. (firstchild(x, y) & in(y, Z))");
  std::set<std::string> fo, so;
  FreeVariables(f, &fo, &so);
  EXPECT_EQ(fo, (std::set<std::string>{"x"}));
  EXPECT_EQ(so, (std::set<std::string>{"Z"}));
}

TEST(FormulaTest, QuantifierRank) {
  EXPECT_EQ(QuantifierRank(MustParse("root(x)")), 0);
  EXPECT_EQ(QuantifierRank(MustParse("exists x. root(x)")), 1);
  EXPECT_EQ(QuantifierRank(MustParse(
                "exists x. (leaf(x) & forall Y. in(x, Y))")),
            2);
  EXPECT_EQ(QuantifierRank(MustParse(
                "exists x. leaf(x) & exists z. root(z)")),
            2);  // parallel, not nested... rank is max nesting = 1? No:
  // "exists x. (leaf(x) & exists z. root(z))" — the parser extends the
  // quantifier body maximally, so z nests inside x: rank 2. ✓
}

// ---------------------------------------------------------------------------
// Reference evaluator
// ---------------------------------------------------------------------------

TEST(ReferenceEvalTest, AtomsOnFigure1) {
  Tree t = tree::PaperFigure1Tree();
  auto eval = [&](const char* text, tree::NodeId n) {
    return *EvalFormulaReference(t, MustParse(text), {{"x", n}}, {});
  };
  EXPECT_TRUE(eval("root(x)", 0));
  EXPECT_FALSE(eval("root(x)", 1));
  EXPECT_TRUE(eval("leaf(x)", 1));
  EXPECT_FALSE(eval("leaf(x)", 2));
  EXPECT_TRUE(eval("lastsibling(x)", 5));
  EXPECT_FALSE(eval("lastsibling(x)", 0));
  EXPECT_TRUE(eval("label_a(x)", 3));
  EXPECT_TRUE(eval("exists y. firstchild(x, y)", 2));
  EXPECT_FALSE(eval("exists y. firstchild(x, y)", 1));
  EXPECT_TRUE(eval("exists y. nextsibling(y, x)", 2));
}

TEST(ReferenceEvalTest, SetQuantification) {
  Tree t = tree::ChildrenWord("a", {"b", "b"});
  // "Every set containing the root and closed under firstchild/nextsibling
  // contains x" — x reachable from root = every node.
  FormulaPtr closed = MustParse(
      "forall Z. ((forall r. (root(r) -> in(r, Z))) &"
      " (forall u. forall v. (in(u, Z) & firstchild(u, v) -> in(v, Z))) &"
      " (forall u2. forall v2. (in(u2, Z) & nextsibling(u2, v2) -> in(v2, Z)))"
      " -> in(x, Z))");
  auto sel = EvalUnaryQueryReference(t, closed, "x");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (std::vector<tree::NodeId>{0, 1, 2}));
}

TEST(ReferenceEvalTest, UnboundVariableIsError) {
  Tree t = tree::PaperExample49Tree();
  EXPECT_FALSE(EvalFormulaReference(t, MustParse("leaf(x)"), {}, {}).ok());
  EXPECT_FALSE(
      EvalFormulaReference(t, MustParse("in(x, Z)"), {{"x", 0}}, {}).ok());
}

// ---------------------------------------------------------------------------
// Automaton primitives
// ---------------------------------------------------------------------------

TEST(AutomatonTest, SingletonBitCountsMarks) {
  Bta s = SingletonBit(/*num_classes=*/1, /*num_bits=*/1, /*bit=*/0);
  // Manual run on a 2-node chain with zero/one/two marks.
  // Chain: root(0) -> child(1); binary encoding: left child only.
  auto run = [&](uint32_t mask_root, uint32_t mask_child) {
    BtaState child = s.Step(s.Sym(0, mask_child), kAbsent, kAbsent);
    BtaState root = s.Step(s.Sym(0, mask_root), child, kAbsent);
    return static_cast<bool>(s.finals[root]);
  };
  EXPECT_FALSE(run(0, 0));
  EXPECT_TRUE(run(1, 0));
  EXPECT_TRUE(run(0, 1));
  EXPECT_FALSE(run(1, 1));
}

TEST(AutomatonTest, MinimizeIsSemanticallyNeutral) {
  MsoCompileOptions opts;
  opts.alphabet = {"a", "b"};
  auto bta = CompileSentence(
      MustParse("exists x. (label_a(x) & leaf(x))"), opts);
  ASSERT_TRUE(bta.ok());
  Bta minimized = Minimize(*bta);
  EXPECT_LE(minimized.num_states, bta->num_states);
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(12)),
                              {"a", "b"});
    auto cls = ClassOfNodes(t, opts.alphabet);
    ASSERT_TRUE(cls.ok());
    auto a1 = BtaAcceptsTree(*bta, t, *cls);
    auto a2 = BtaAcceptsTree(minimized, t, *cls);
    ASSERT_TRUE(a1.ok());
    ASSERT_TRUE(a2.ok());
    EXPECT_EQ(*a1, *a2);
  }
}

TEST(AutomatonTest, ClassOfNodesRejectsForeignLabels) {
  Tree t = tree::ChildrenWord("a", {"z"});
  EXPECT_FALSE(ClassOfNodes(t, {"a", "b"}).ok());
}

// ---------------------------------------------------------------------------
// Sentences: compiled automaton vs. reference semantics
// ---------------------------------------------------------------------------

void ExpectSentenceAgreesWithReference(const std::string& text,
                                       uint64_t seed) {
  FormulaPtr f = MustParse(text);
  MsoCompileOptions opts;
  opts.alphabet = {"a", "b"};
  auto bta = CompileSentence(f, opts);
  ASSERT_TRUE(bta.ok()) << bta.status().ToString() << " for " << text;
  util::Rng rng(seed);
  for (int trial = 0; trial < 15; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(9)),
                              {"a", "b"});
    auto cls = ClassOfNodes(t, opts.alphabet);
    ASSERT_TRUE(cls.ok());
    auto automaton = BtaAcceptsTree(*bta, t, *cls);
    auto reference = EvalFormulaReference(t, f, {}, {});
    ASSERT_TRUE(automaton.ok());
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(*automaton, *reference)
        << text << " on " << tree::ToDebugString(t);
  }
}

TEST(CompileSentenceTest, ExistentialAtoms) {
  ExpectSentenceAgreesWithReference("exists x. label_a(x)", 1);
  ExpectSentenceAgreesWithReference("exists x. (leaf(x) & label_b(x))", 2);
  ExpectSentenceAgreesWithReference("exists x. (root(x) & label_a(x))", 3);
}

TEST(CompileSentenceTest, UniversalAndNegation) {
  ExpectSentenceAgreesWithReference("forall x. (leaf(x) -> label_a(x))", 4);
  ExpectSentenceAgreesWithReference("~(exists x. label_b(x))", 5);
  ExpectSentenceAgreesWithReference(
      "forall x. (label_a(x) | label_b(x))", 6);
}

TEST(CompileSentenceTest, BinaryRelations) {
  ExpectSentenceAgreesWithReference(
      "exists x. exists y. (firstchild(x, y) & label_b(y))", 7);
  ExpectSentenceAgreesWithReference(
      "exists x. exists y. (nextsibling(x, y) & label_a(x) & label_a(y))", 8);
  ExpectSentenceAgreesWithReference(
      "forall x. forall y. (firstchild(x, y) -> label_a(x))", 9);
}

TEST(CompileSentenceTest, SetQuantifier) {
  // There is a set containing every a-node and no b-node (always true), vs.
  // a contradiction.
  ExpectSentenceAgreesWithReference(
      "exists Z. forall x. ((label_a(x) -> in(x, Z)) & "
      "(label_b(x) -> ~(in(x, Z))))",
      10);
  ExpectSentenceAgreesWithReference(
      "exists Z. forall x. (in(x, Z) & ~(in(x, Z)))", 11);
}

// ---------------------------------------------------------------------------
// Unary queries: automaton vs. reference vs. hand-written datalog
// ---------------------------------------------------------------------------

void ExpectUnaryQueryAgreesWithReference(const std::string& text,
                                         uint64_t seed) {
  FormulaPtr f = MustParse(text);
  MsoCompileOptions opts;
  opts.alphabet = {"a", "b"};
  auto bta = CompileUnaryQuery(f, "x", opts);
  ASSERT_TRUE(bta.ok()) << bta.status().ToString() << " for " << text;
  util::Rng rng(seed);
  for (int trial = 0; trial < 12; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(9)),
                              {"a", "b"});
    auto cls = ClassOfNodes(t, opts.alphabet);
    ASSERT_TRUE(cls.ok());
    auto automaton = BtaUnaryQuery(*bta, t, *cls);
    auto reference = EvalUnaryQueryReference(t, f, "x");
    ASSERT_TRUE(automaton.ok());
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(*automaton, *reference)
        << text << " on " << tree::ToDebugString(t);
  }
}

TEST(UnaryQueryTest, StructuralQueries) {
  ExpectUnaryQueryAgreesWithReference("leaf(x) & label_a(x)", 21);
  ExpectUnaryQueryAgreesWithReference("exists y. firstchild(y, x)", 22);
  ExpectUnaryQueryAgreesWithReference(
      "exists y. (nextsibling(x, y) & label_b(y))", 23);
  ExpectUnaryQueryAgreesWithReference("~(leaf(x)) & ~(root(x))", 24);
  ExpectUnaryQueryAgreesWithReference("lastsibling(x)", 25);
}

TEST(UnaryQueryTest, ReachabilityViaSetVariable) {
  // x is a descendant-or-self of an a-labeled node: every set containing all
  // a-nodes and closed under firstchild/nextsibling-reachability from them…
  // Simpler MSO: exists an a-node y such that x is reachable from y via
  // (firstchild ∪ nextsibling)* starting through firstchild — here we use
  // the standard "every closed set containing y contains x" trick.
  ExpectUnaryQueryAgreesWithReference(
      "exists y. (label_b(y) & forall Z. ("
      "(in(y, Z) & "
      " (forall u. forall v. (in(u, Z) & firstchild(u, v) -> in(v, Z))) & "
      " (forall u2. forall v2. (in(u2, Z) & nextsibling(u2, v2) -> in(v2, Z)))"
      ") -> in(x, Z)))",
      26);
}

TEST(UnaryQueryTest, EvenAMatchesHandWrittenDatalog) {
  // The Example 3.2 query in MSO: x roots a subtree with an even number of
  // a's. MSO encoding: there is a set E (of "even-boundary" nodes…) — far
  // simpler to state via parity of a set: we use the classic trick with two
  // sets that partition the a-descendants... To keep the formula compact we
  // instead check agreement of the *compiled datalog* with the automaton on
  // the dedicated even-a test below; here: "x has an a-labeled child".
  ExpectUnaryQueryAgreesWithReference(
      "exists y. (label_a(y) & forall Z. ((in(y, Z) & forall u. forall v. "
      "(in(u, Z) & nextsibling(v, u) -> in(v, Z))) -> "
      "(exists w. (in(w, Z) & firstchild(x, w)))))",
      27);
}

// ---------------------------------------------------------------------------
// Corollary 4.17: compiled datalog program ≡ automaton ≡ reference
// ---------------------------------------------------------------------------

void ExpectDatalogMatchesAutomaton(const std::string& text, uint64_t seed) {
  FormulaPtr f = MustParse(text);
  MsoCompileOptions opts;
  opts.alphabet = {"a", "b"};
  auto bta = CompileUnaryQuery(f, "x", opts);
  ASSERT_TRUE(bta.ok());
  auto program = BtaToDatalog(*bta, opts.alphabet);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(core::GroundableOverTree(*program));
  util::Rng rng(seed);
  for (int trial = 0; trial < 12; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(25)),
                              {"a", "b"});
    auto cls = ClassOfNodes(t, opts.alphabet);
    ASSERT_TRUE(cls.ok());
    auto automaton = BtaUnaryQuery(*bta, t, *cls);
    ASSERT_TRUE(automaton.ok());
    auto datalog = core::EvaluateOnTree(*program, t, core::Engine::kGrounded);
    ASSERT_TRUE(datalog.ok());
    EXPECT_EQ(datalog->Query(), *automaton)
        << text << " on " << tree::ToDebugString(t);
  }
}

TEST(Corollary417Test, CompiledProgramsMatchAutomata) {
  ExpectDatalogMatchesAutomaton("leaf(x) & label_a(x)", 41);
  ExpectDatalogMatchesAutomaton("exists y. firstchild(y, x)", 42);
  ExpectDatalogMatchesAutomaton("~(root(x)) & lastsibling(x)", 43);
  ExpectDatalogMatchesAutomaton(
      "exists y. (nextsibling(y, x) & label_a(y))", 44);
  ExpectDatalogMatchesAutomaton(
      "forall y. (firstchild(x, y) -> label_b(y))", 45);
}

TEST(Corollary417Test, ProgramSizeLinearInDelta) {
  MsoCompileOptions opts;
  opts.alphabet = {"a", "b"};
  auto bta = CompileUnaryQuery(
      MustParse("exists y. firstchild(y, x)"), "x", opts);
  ASSERT_TRUE(bta.ok());
  auto program = BtaToDatalog(*bta, opts.alphabet);
  ASSERT_TRUE(program.ok());
  // Up to ~3 rules per transition entry plus seeds.
  EXPECT_LE(static_cast<int64_t>(program->rules().size()),
            3 * static_cast<int64_t>(bta->delta.size()) + bta->num_states + 2);
}

TEST(Corollary417Test, EvenAQueryViaMsoMachinery) {
  // The even-a query of Example 3.2, expressed with two set variables
  // partitioning by parity is heavy for the reference evaluator, so we
  // validate the full yardstick chain the other way: hand datalog (Example
  // 3.2) == SQAu runner == its Theorem 4.14 translation is covered in
  // qa_test; here we close the loop MSO-automaton == hand datalog on the
  // "has an a-labeled first child" query.
  FormulaPtr f = MustParse("exists y. (firstchild(x, y) & label_a(y))");
  MsoCompileOptions opts;
  opts.alphabet = {"a", "b"};
  auto bta = CompileUnaryQuery(f, "x", opts);
  ASSERT_TRUE(bta.ok());
  auto parsed = core::ParseProgramWithQuery(
      "q(X) :- firstchild(X, Y), label_a(Y).", "q");
  ASSERT_TRUE(parsed.ok());
  util::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(30)),
                              {"a", "b"});
    auto cls = ClassOfNodes(t, opts.alphabet);
    ASSERT_TRUE(cls.ok());
    auto automaton = BtaUnaryQuery(*bta, t, *cls);
    ASSERT_TRUE(automaton.ok());
    auto datalog = core::EvaluateOnTree(*parsed, t);
    ASSERT_TRUE(datalog.ok());
    EXPECT_EQ(*automaton, datalog->Query());
  }
}

TEST(CompileTest, ErrorsAndGuards) {
  MsoCompileOptions opts;
  opts.alphabet = {"a"};
  // Free variable in a sentence.
  EXPECT_FALSE(CompileSentence(MustParse("leaf(x)"), opts).ok());
  // Wrong free variable for a unary query.
  EXPECT_FALSE(CompileUnaryQuery(MustParse("leaf(y)"), "x", opts).ok());
  // Label outside alphabet.
  EXPECT_FALSE(
      CompileSentence(MustParse("exists x. label_z(x)"), opts).ok());
  // Variable shadowing is reported, not miscompiled.
  EXPECT_FALSE(CompileSentence(
                   MustParse("exists x. (leaf(x) & exists x. root(x))"), opts)
                   .ok());
  // Empty alphabet.
  MsoCompileOptions empty;
  EXPECT_FALSE(CompileSentence(MustParse("exists x. leaf(x)"), empty).ok());
}

}  // namespace
}  // namespace mdatalog::mso
