// Tests for the static-analysis subsystem (src/analysis/): SAT-backed
// bounded containment/equivalence, extraction-preserving minimization, and
// canonical program/wrapper keys.
//
// The heavy property tests cross-check the subsystem against ground truth
// the repo already trusts: brute-force tree enumeration plus the production
// evaluators. Equivalent() must agree with exhaustive small-tree search;
// Minimize() must leave every root extent byte-identical on every tree and
// engine.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/canonical.h"
#include "src/analysis/containment.h"
#include "src/analysis/minimize.h"
#include "src/analysis/sat_solver.h"
#include "src/core/ast.h"
#include "src/core/database.h"
#include "src/core/eval.h"
#include "src/core/grounder.h"
#include "src/core/parser.h"
#include "src/core/reference_eval.h"
#include "src/elog/ast.h"
#include "src/elog/lint.h"
#include "src/elog/to_datalog.h"
#include "src/runtime/runtime.h"
#include "src/tmnf/pipeline.h"
#include "src/tree/generator.h"
#include "src/tree/tree.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;
using analysis::ContainmentOptions;
using analysis::Verdict;

core::Program MustParse(const std::string& text, const std::string& query) {
  auto p = core::ParseProgramWithQuery(text, query);
  EXPECT_TRUE(p.ok()) << p.status().message() << "\n" << text;
  return std::move(*p);
}

// --- SAT core sanity ------------------------------------------------------

TEST(SatSolverTest, BasicSatUnsat) {
  analysis::SatSolver s;
  analysis::Lit a = s.NewVar(), b = s.NewVar();
  s.AddBinary(a, b);
  s.AddBinary(-a, b);
  EXPECT_EQ(s.Solve(), analysis::SatSolver::Outcome::kSat);
  EXPECT_TRUE(s.ModelValue(b));
  // Under assumptions the formula flips unsat, but stays sat without them.
  EXPECT_EQ(s.Solve({-b}), analysis::SatSolver::Outcome::kUnsat);
  EXPECT_EQ(s.Solve(), analysis::SatSolver::Outcome::kSat);
  s.AddUnit(-b);
  EXPECT_EQ(s.Solve(), analysis::SatSolver::Outcome::kUnsat);
  EXPECT_TRUE(s.terminally_unsat());
}

TEST(SatSolverTest, PigeonholeIsUnsat) {
  // 4 pigeons, 3 holes: forces real conflict analysis and backtracking.
  analysis::SatSolver s;
  analysis::Lit x[4][3];
  for (auto& row : x) {
    for (auto& v : row) v = s.NewVar();
  }
  for (int p = 0; p < 4; ++p) {
    s.AddTernary(x[p][0], x[p][1], x[p][2]);
  }
  for (int h = 0; h < 3; ++h) {
    for (int p = 0; p < 4; ++p) {
      for (int q = p + 1; q < 4; ++q) s.AddBinary(-x[p][h], -x[q][h]);
    }
  }
  EXPECT_EQ(s.Solve(), analysis::SatSolver::Outcome::kUnsat);
  EXPECT_GT(s.conflicts(), 0);
}

// --- containment: directed cases ------------------------------------------

TEST(ContainmentTest, RenamedProgramsAreEquivalent) {
  core::Program p = MustParse("q(X) :- label_a(X).", "q");
  core::Program q = MustParse("r(Y) :- label_a(Y).", "r");
  auto eq = analysis::Equivalent(p, q);
  ASSERT_TRUE(eq.ok()) << eq.status().message();
  EXPECT_EQ(eq->verdict, Verdict::kContained);
}

TEST(ContainmentTest, DifferentLabelsRefutedWithWitness) {
  core::Program p = MustParse("q(X) :- label_a(X).", "q");
  core::Program q = MustParse("r(X) :- label_b(X).", "r");
  auto c = analysis::Contains(p, q);
  ASSERT_TRUE(c.ok()) << c.status().message();
  ASSERT_EQ(c->verdict, Verdict::kNotContained);
  // The witness was already re-verified by the production engine
  // (verify_witness defaults on); spot-check its shape anyway.
  ASSERT_TRUE(c->witness_tree.has_value());
  EXPECT_EQ(c->witness_tree->label_name(c->witness_node), "a");
  EXPECT_EQ(c->witness_depth, 0);  // a single a-labeled root suffices
}

TEST(ContainmentTest, StrictSubsetOneDirectionOnly) {
  // "a-labeled leaves" ⊆ "a-labeled nodes", strictly on trees of depth ≥ 1.
  core::Program p = MustParse("q(X) :- leaf(X), label_a(X).", "q");
  core::Program q = MustParse("r(X) :- label_a(X).", "r");
  auto fwd = analysis::Contains(p, q);
  ASSERT_TRUE(fwd.ok());
  EXPECT_EQ(fwd->verdict, Verdict::kContained);
  auto bwd = analysis::Contains(q, p);
  ASSERT_TRUE(bwd.ok());
  ASSERT_EQ(bwd->verdict, Verdict::kNotContained);
  // Counterexample: an a-labeled non-leaf. Needs one child, so depth 1.
  EXPECT_EQ(bwd->witness_depth, 1);
}

TEST(ContainmentTest, RecursiveReachabilityCoversLeaves) {
  // Q derives every node (root + firstchild/nextsibling closure), so any
  // unary query is contained in it; the reverse is refutable at depth 1.
  const std::string all =
      "all(X) :- root(X).\n"
      "all(X) :- all(X0), firstchild(X0, X).\n"
      "all(X) :- all(X0), nextsibling(X0, X).\n";
  core::Program p = MustParse("q(X) :- leaf(X).", "q");
  core::Program q = MustParse(all, "all");
  auto fwd = analysis::Contains(p, q);
  ASSERT_TRUE(fwd.ok());
  EXPECT_EQ(fwd->verdict, Verdict::kContained);
  auto bwd = analysis::Contains(q, p);
  ASSERT_TRUE(bwd.ok());
  EXPECT_EQ(bwd->verdict, Verdict::kNotContained);
}

TEST(ContainmentTest, DepthBoundIsPartOfTheContract) {
  // q nonempty only on trees with a firstchild-chain of length 2; against
  // an empty program, the verdict flips exactly when the bound admits the
  // counterexample.
  const std::string deep =
      "lvl1(X) :- root(X0), firstchild(X0, X).\n"
      "q(X) :- lvl1(X0), firstchild(X0, X).\n";
  core::Program p = MustParse(deep, "q");
  core::Program q = MustParse("r(X) :- never(X).", "r");
  ContainmentOptions shallow;
  shallow.max_depth = 1;
  auto c1 = analysis::Contains(p, q, shallow);
  ASSERT_TRUE(c1.ok()) << c1.status().message();
  EXPECT_EQ(c1->verdict, Verdict::kContained);  // within bounds only
  ContainmentOptions deep_enough;
  deep_enough.max_depth = 2;
  auto c2 = analysis::Contains(p, q, deep_enough);
  ASSERT_TRUE(c2.ok());
  ASSERT_EQ(c2->verdict, Verdict::kNotContained);
  EXPECT_EQ(c2->witness_depth, 2);
}

TEST(ContainmentTest, ConflictBudgetYieldsUnknown) {
  const std::string all =
      "all(X) :- root(X).\n"
      "all(X) :- all(X0), firstchild(X0, X).\n"
      "all(X) :- all(X0), nextsibling(X0, X).\n";
  core::Program p = MustParse(all, "all");
  core::Program q = MustParse("r(X) :- leaf(X).", "r");
  ContainmentOptions opts;
  opts.max_conflicts = 0;  // no search allowed beyond pure propagation
  auto c = analysis::Contains(p, q, opts);
  ASSERT_TRUE(c.ok());
  // Either propagation alone already found the witness or we get kUnknown —
  // never a (wrong) kContained.
  EXPECT_NE(c->verdict, Verdict::kContained);
}

TEST(ContainmentTest, NonTmnfProgramRejected) {
  core::Program p = MustParse("q(X) :- child(X0, X), label_a(X0).", "q");
  core::Program q = MustParse("r(X) :- label_a(X).", "r");
  auto c = analysis::Contains(p, q);
  EXPECT_FALSE(c.ok());  // child/2 is outside TMNF's firstchild/nextsibling
}

// --- containment vs. brute force ------------------------------------------

// Enumerates every tree with ≤ max_depth levels below the root, ≤ 2
// children per node, labels drawn from {a, b, c}, and calls `fn` on each.
std::vector<tree::Tree> AllTrees(int max_depth) {
  // Shapes are generated as nested vectors: a shape is a label index plus
  // child shapes (≤ 2 children per node, 3 labels).
  struct Shape {
    int label;
    std::vector<Shape> children;
  };
  std::vector<std::vector<Shape>> by_depth(max_depth + 1);
  for (int d = 0; d <= max_depth; ++d) {
    // All shapes of depth ≤ d: label × (children lists of size 0..2 over
    // shapes of depth ≤ d-1).
    std::vector<std::vector<Shape>> child_lists;
    child_lists.push_back({});
    if (d > 0) {
      for (const Shape& c0 : by_depth[d - 1]) {
        child_lists.push_back({c0});
        for (const Shape& c1 : by_depth[d - 1]) {
          child_lists.push_back({c0, c1});
        }
      }
    }
    for (int l = 0; l < 3; ++l) {
      for (const auto& cl : child_lists) {
        by_depth[d].push_back(Shape{l, cl});
      }
    }
  }
  const std::vector<std::string> label_names = {"a", "b", "c"};
  struct Builder {
    const std::vector<std::string>& names;
    tree::TreeBuilder* b;
    void Add(tree::NodeId parent, const Shape& s) {
      tree::NodeId n = b->Child(parent, names[s.label]);
      for (const Shape& c : s.children) Add(n, c);
    }
  };
  std::vector<tree::Tree> trees;
  trees.reserve(by_depth[max_depth].size());
  for (const Shape& root : by_depth[max_depth]) {
    tree::TreeBuilder b;
    tree::NodeId r = b.Root(label_names[root.label]);
    Builder helper{label_names, &b};
    for (const Shape& c : root.children) helper.Add(r, c);
    trees.push_back(b.Build());
  }
  return trees;
}

// Random TMNF programs over labels {a, b} and IDB preds p0..p2 (query p0).
core::Program RandomTmnfProgram(util::Rng& rng) {
  const std::vector<std::string> ops = {"root",    "leaf", "lastsibling",
                                        "label_a", "label_b",
                                        "p0",      "p1",   "p2"};
  const std::vector<std::string> heads = {"p0", "p1", "p2"};
  std::string text;
  int num_rules = 1 + static_cast<int>(rng.Below(5));
  for (int i = 0; i < num_rules; ++i) {
    const std::string& h = heads[rng.Below(heads.size())];
    const std::string& o = ops[rng.Below(ops.size())];
    switch (rng.Below(3)) {
      case 0:
        text += h + "(X) :- " + o + "(X).\n";
        break;
      case 1: {
        const char* b = rng.Chance(1, 2) ? "firstchild" : "nextsibling";
        if (rng.Chance(1, 2)) {
          text += h + "(X) :- " + o + "(X0), " + b + "(X0, X).\n";
        } else {
          text += h + "(X) :- " + o + "(X0), " + b + "(X, X0).\n";
        }
        break;
      }
      default: {
        const std::string& o2 = ops[rng.Below(ops.size())];
        text += h + "(X) :- " + o + "(X), " + o2 + "(X).\n";
        break;
      }
    }
  }
  // p0 may end up ruleless; ParseProgramWithQuery requires the pred to
  // occur, so mention it through a throwaway rule head guard.
  text += "p0(X) :- p0(X).\n";
  return MustParse(text, "p0");
}

TEST(ContainmentTest, AgreesWithBruteForceOnRandomPrograms) {
  util::Rng rng(20260808);
  constexpr int kDepth = 2;
  const std::vector<tree::Tree> trees = AllTrees(kDepth);
  int refuted = 0;
  for (int trial = 0; trial < 30; ++trial) {
    core::Program p = RandomTmnfProgram(rng);
    core::Program q = RandomTmnfProgram(rng);

    // Ground truth: search all trees of depth ≤ 2, branch ≤ 2 over three
    // labels (two mentioned + one fresh — exactly the encoder's alphabet).
    bool counterexample = false;
    for (const tree::Tree& t : trees) {
      core::TreeDatabase db(t);
      auto pe = core::EvaluateSemiNaive(p, db);
      auto qe = core::EvaluateSemiNaive(q, db);
      ASSERT_TRUE(pe.ok() && qe.ok());
      for (int32_t v : pe->Query()) {
        if (!qe->ContainsUnary(q.query_pred(), v)) {
          counterexample = true;
          break;
        }
      }
      if (counterexample) break;
    }

    ContainmentOptions opts;
    opts.max_depth = kDepth;
    opts.max_branch = 2;
    auto c = analysis::Contains(p, q, opts);
    ASSERT_TRUE(c.ok()) << c.status().message();
    ASSERT_NE(c->verdict, Verdict::kUnknown) << core::ToString(p);
    EXPECT_EQ(c->verdict == Verdict::kNotContained, counterexample)
        << "P:\n" << core::ToString(p) << "Q:\n" << core::ToString(q);
    refuted += c->verdict == Verdict::kNotContained ? 1 : 0;
  }
  // The sweep must exercise both verdicts to mean anything.
  EXPECT_GT(refuted, 3);
  EXPECT_LT(refuted, 30);
}

// --- minimization ----------------------------------------------------------

TEST(MinimizeTest, FatesCoverEveryCategory) {
  const std::string text =
      "q(X) :- label_a(X).\n"                 // 0: kept
      "q(X) :- label_a(X), label_b(X).\n"     // 1: unsat body (two labels)
      "q(X) :- ghost(X).\n"                   // 2: underivable (ghost is
                                              //    IDB-with-no-rules? no —
                                              //    EDB; see below)
      "dead(X) :- label_b(X).\n"              // 3: unreachable from q
      "q(Y) :- label_a(Y).\n"                 // 4: duplicate of 0
      "q(X) :- label_a(X), leaf(X).\n"        // 5: subsumed by 0
      "q(X) :- child(X, Y), child(X, Z).\n";  // 6: condenses to one literal
  core::Program p = MustParse(text, "q");
  // `ghost` is extensional here (no rules), so rule 2 is NOT removable —
  // an unknown EDB predicate may hold facts in other databases. Pin that.
  auto r = analysis::Minimize(p);
  ASSERT_TRUE(r.ok()) << r.status().message();
  using analysis::RuleFate;
  ASSERT_EQ(r->fates.size(), 7u);
  EXPECT_EQ(r->fates[0], RuleFate::kKept);
  EXPECT_EQ(r->fates[1], RuleFate::kUnsatBody);
  EXPECT_EQ(r->fates[2], RuleFate::kKept);
  EXPECT_EQ(r->fates[3], RuleFate::kUnreachable);
  EXPECT_EQ(r->fates[4], RuleFate::kDuplicate);
  EXPECT_EQ(r->fates[5], RuleFate::kSubsumed);
  EXPECT_EQ(r->fates[6], RuleFate::kKept);
  EXPECT_EQ(r->literals_removed[6], 1);
  EXPECT_EQ(r->program.rules().size(), 3u);
}

TEST(MinimizeTest, UnderivableIdbCascades) {
  const std::string text =
      "q(X) :- label_a(X).\n"
      "aux(X) :- aux(X).\n"        // IDB, only self-supported: underivable
      "q(X) :- aux(X), leaf(X).\n";
  core::Program p = MustParse(text, "q");
  auto r = analysis::Minimize(p);
  ASSERT_TRUE(r.ok());
  using analysis::RuleFate;
  EXPECT_EQ(r->fates[0], RuleFate::kKept);
  EXPECT_EQ(r->fates[1], RuleFate::kUnderivableBody);
  EXPECT_EQ(r->fates[2], RuleFate::kUnderivableBody);
}

TEST(MinimizeTest, TreeAxiomContradictions) {
  const std::string text =
      "q(X) :- root(X), lastsibling(X).\n"       // root is never lastsibling
      "q(X) :- root(X), child(Y, X).\n"          // root has no parent
      "q(X) :- leaf(X), firstchild(X, Y).\n"     // leaves have no children
      "q(X) :- lastsibling(X), nextsibling(X, Y).\n"
      "q(X) :- root(X).\n";                      // fine
  core::Program p = MustParse(text, "q");
  auto r = analysis::Minimize(p);
  ASSERT_TRUE(r.ok());
  using analysis::RuleFate;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r->fates[i], RuleFate::kUnsatBody) << "rule " << i;
  }
  EXPECT_EQ(r->fates[4], RuleFate::kKept);
}

TEST(MinimizeTest, DifferentialOnRandomTreesAllEngines) {
  // The acceptance property: Minimize(P) computes byte-identical root
  // extents on every tree, for every engine the repo ships.
  util::Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    core::Program p = RandomTmnfProgram(rng);
    auto m = analysis::Minimize(p);
    ASSERT_TRUE(m.ok()) << core::ToString(p);
    for (int i = 0; i < 6; ++i) {
      tree::Tree t = tree::RandomTree(
          rng, 1 + static_cast<int32_t>(rng.Below(40)), {"a", "b", "c"});
      core::TreeDatabase db(t);
      auto naive0 = core::EvaluateNaive(p, db);
      auto naive1 = core::EvaluateNaive(m->program, db);
      auto semi0 = core::EvaluateSemiNaive(p, db);
      auto semi1 = core::EvaluateSemiNaive(m->program, db);
      auto ref0 = core::EvaluateNaiveReference(p, db);
      auto ref1 = core::EvaluateNaiveReference(m->program, db);
      ASSERT_TRUE(naive0.ok() && naive1.ok() && semi0.ok() && semi1.ok() &&
                  ref0.ok() && ref1.ok());
      EXPECT_EQ(naive0->Query(), naive1->Query())
          << core::ToString(p) << "-- minimized:\n"
          << core::ToString(m->program);
      EXPECT_EQ(semi0->Query(), semi1->Query());
      EXPECT_EQ(ref0->Query(), ref1->Query());
      if (core::GroundableOverTree(p) &&
          core::GroundableOverTree(m->program)) {
        auto g0 = core::EvaluateGrounded(p, t);
        auto g1 = core::EvaluateGrounded(m->program, t);
        ASSERT_TRUE(g0.ok() && g1.ok());
        EXPECT_EQ(g0->Query(), g1->Query());
      }
    }
  }
}

TEST(MinimizeTest, VerifyOptionProvesReductions) {
  const std::string text =
      "q(X) :- label_a(X).\n"
      "q(X) :- label_a(X), leaf(X).\n"   // subsumed
      "q(Y) :- label_a(Y).\n";           // duplicate
  core::Program p = MustParse(text, "q");
  analysis::MinimizeOptions opts;
  opts.verify = true;
  opts.verify_options.max_depth = 2;
  opts.verify_options.max_branch = 2;
  auto r = analysis::Minimize(p, opts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r->verified, Verdict::kContained);
  EXPECT_EQ(r->program.rules().size(), 1u);
}

TEST(MinimizeTest, SubsumptionHelper) {
  core::Program p = MustParse(
      "q(X) :- child(X, Y).\n"
      "q(X) :- child(X, Y), child(X, Z).\n"
      "q(X) :- child(Y, X).\n",
      "q");
  const auto& rules = p.rules();
  EXPECT_TRUE(analysis::Subsumes(rules[0], rules[1]));
  // θ-subsumption is not symmetric-free here: mapping both body literals
  // onto the single child(X, Y) (θ(Z) = Y) works, so rule 1 subsumes
  // rule 0 as well — they are genuinely equivalent.
  EXPECT_TRUE(analysis::Subsumes(rules[1], rules[0]));
  // Flipped argument order cannot be matched by any substitution.
  EXPECT_FALSE(analysis::Subsumes(rules[0], rules[2]));
}

// --- canonicalization ------------------------------------------------------

TEST(CanonicalTest, ReorderedAndRenamedRulesShareText) {
  core::Program a = MustParse(
      "q(X) :- label_a(X), child(X, Y), leaf(Y).\n"
      "q(X) :- root(X).\n",
      "q");
  core::Program b = MustParse(
      "q(N) :- root(N).\n"
      "q(U) :- child(U, W), leaf(W), label_a(U).\n",
      "q");
  EXPECT_EQ(analysis::CanonicalProgramText(a),
            analysis::CanonicalProgramText(b));
}

TEST(CanonicalTest, DistinctProgramsKeepDistinctText) {
  core::Program a = MustParse("q(X) :- label_a(X).", "q");
  core::Program b = MustParse("q(X) :- label_b(X).", "q");
  EXPECT_NE(analysis::CanonicalProgramText(a),
            analysis::CanonicalProgramText(b));
}

TEST(CanonicalTest, EquivalentWrapperFormulationsShareKey) {
  // The same extraction task stated three ways: clean, redundant (duplicate
  // + subsumed rules), and reordered. All three must map to one key.
  const std::string clean =
      "item(X) <- root(R), subelem(R, \"_.item\", X), leaf(X), "
      "lastsibling(X).\n";
  const std::string redundant =
      "item(X) <- root(R), subelem(R, \"_.item\", X), leaf(X), "
      "lastsibling(X).\n"
      "item(Y) <- root(S), subelem(S, \"_.item\", Y), lastsibling(Y), "
      "leaf(Y).\n";
  const std::string reordered =
      "item(V) <- root(W), subelem(W, \"_.item\", V), lastsibling(V), "
      "leaf(V).\n";
  auto pa = elog::ParseElog(clean);
  auto pb = elog::ParseElog(redundant);
  auto pc = elog::ParseElog(reordered);
  ASSERT_TRUE(pa.ok()) << pa.status().message();
  ASSERT_TRUE(pb.ok()) << pb.status().message();
  ASSERT_TRUE(pc.ok()) << pc.status().message();
  auto ka = analysis::CanonicalWrapperKey(*pa, {"item"});
  auto kb = analysis::CanonicalWrapperKey(*pb, {"item"});
  auto kc = analysis::CanonicalWrapperKey(*pc, {"item"});
  ASSERT_TRUE(ka.ok() && kb.ok() && kc.ok());
  EXPECT_TRUE(ka->canonicalized);
  EXPECT_EQ(ka->fingerprint, kb->fingerprint);
  EXPECT_EQ(ka->text, kb->text);
  EXPECT_EQ(ka->fingerprint, kc->fingerprint);
}

TEST(CanonicalTest, PatternOrderIsPartOfTheKey) {
  const std::string text =
      "a(X) <- root(R), subelem(R, \"_.a\", X).\n"
      "b(X) <- root(R), subelem(R, \"_.b\", X).\n";
  auto p = elog::ParseElog(text);
  ASSERT_TRUE(p.ok());
  auto k1 = analysis::CanonicalWrapperKey(*p, {"a", "b"});
  auto k2 = analysis::CanonicalWrapperKey(*p, {"b", "a"});
  ASSERT_TRUE(k1.ok() && k2.ok());
  // Output-tree construction depends on pattern order; keys must differ.
  EXPECT_NE(k1->fingerprint, k2->fingerprint);
}

// --- wrapper corpus (examples/wrappers) -----------------------------------
//
// The checked-in corpus is shared by these tests, the mdl-lint CI smoke run
// and bench_analysis — one set of real-ish wrappers, three consumers.

std::string CorpusPath(const std::string& name) {
  return std::string(MDATALOG_WRAPPER_CORPUS_DIR) + "/" + name;
}

wrapper::Wrapper MustLoadWrapper(const std::string& name) {
  std::ifstream in(CorpusPath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  auto w = wrapper::ParseWrapperText(ss.str());
  EXPECT_TRUE(w.ok()) << name << ": " << w.status().message();
  return std::move(*w);
}

/// Random page over the corpus vocabulary: nested tables/divs with
/// class-attributed cells, plus unrelated tags, so both the catalog and the
/// news wrappers have real (and near-miss) matches.
std::string RandomCorpusPage(util::Rng& rng, int32_t depth) {
  static const char* kTags[] = {"table", "tr", "td", "div", "h2", "span"};
  static const char* kClasses[] = {"item", "name", "price", "story", ""};
  const char* tag = kTags[rng.Below(6)];
  const char* cls = kClasses[rng.Below(5)];
  std::string open = std::string("<") + tag;
  if (*cls != '\0') open += std::string(" class=\"") + cls + "\"";
  open += ">";
  std::string body;
  if (depth > 0) {
    const int32_t kids = static_cast<int32_t>(rng.Below(4));
    for (int32_t i = 0; i < kids; ++i) {
      body += RandomCorpusPage(rng, depth - 1);
    }
  }
  return open + body + "</" + tag + ">";
}

/// Drops every rule the linter proved removable, keeping the Elog surface
/// form of the rest. Extraction-preservation of exactly this reduction is
/// what the differential harness below pins.
wrapper::Wrapper MinimizedWrapper(const wrapper::Wrapper& w) {
  auto report = elog::LintWrapper(w.program, w.extraction_patterns);
  EXPECT_TRUE(report.ok()) << report.status().message();
  std::vector<bool> drop(w.program.rules().size(), false);
  for (const elog::LintFinding& f : report->findings) {
    if (f.rule_index < 0) continue;
    if (f.kind != elog::LintFinding::Kind::kRedundantLiterals) {
      drop[static_cast<size_t>(f.rule_index)] = true;
    }
  }
  wrapper::Wrapper out;
  for (size_t i = 0; i < w.program.rules().size(); ++i) {
    if (!drop[i]) out.program.AddRule(w.program.rules()[i]);
  }
  out.extraction_patterns = w.extraction_patterns;
  return out;
}

/// The differential property harness: for every Elog⁻ corpus wrapper, the
/// minimized wrapper's output is byte-identical to the original's on random
/// pages, across all four runtime engine modes.
TEST(WrapperCorpusTest, MinimizeIsExtractionPreservingAcrossEngines) {
  const std::vector<std::string> corpus = {
      "catalog_clean.elog",  "catalog_redundant.elog",
      "catalog_reordered.elog", "news_clean.elog",
      "news_broken.elog",    "lint_dirty.elog"};
  const runtime::RuntimeOptions::EngineMode kModes[] = {
      runtime::RuntimeOptions::EngineMode::kAuto,
      runtime::RuntimeOptions::EngineMode::kNativeElog,
      runtime::RuntimeOptions::EngineMode::kGroundedDatalog,
      runtime::RuntimeOptions::EngineMode::kSemiNaiveDatalog,
  };
  util::Rng rng(20260808);
  std::vector<std::string> pages;
  for (int i = 0; i < 8; ++i) {
    pages.push_back("<html>" + RandomCorpusPage(rng, 4) +
                    RandomCorpusPage(rng, 3) + "</html>");
  }
  for (const std::string& name : corpus) {
    wrapper::Wrapper original = MustLoadWrapper(name);
    ASSERT_FALSE(original.program.UsesDeltaBuiltins());
    wrapper::Wrapper minimized = MinimizedWrapper(original);
    for (const std::string& page : pages) {
      std::string reference;
      bool first = true;
      for (auto mode : kModes) {
        runtime::RuntimeOptions opts;
        opts.engine = mode;
        opts.result_memo.byte_budget = 0;  // every Wrap must really evaluate
        runtime::WrapperRuntime rt(opts);
        for (const wrapper::Wrapper* w : {&original, &minimized}) {
          auto handle = rt.Register(*w, "class");
          ASSERT_TRUE(handle.ok()) << name;
          auto got = rt.Wrap(*handle, page);
          ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
          if (first) {
            reference = *got;
            first = false;
          } else {
            ASSERT_EQ(*got, reference)
                << name << " diverged (engine mode "
                << static_cast<int>(mode) << ")";
          }
        }
      }
    }
  }
}

TEST(WrapperCorpusTest, LintFindingsPinned) {
  // Clean wrappers stay clean; the dirty wrapper fires every category once.
  for (const char* name :
       {"catalog_clean.elog", "catalog_reordered.elog", "news_clean.elog",
        "news_broken.elog"}) {
    wrapper::Wrapper w = MustLoadWrapper(name);
    auto report = elog::LintWrapper(w.program, w.extraction_patterns);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean()) << name << ":\n" << report->ToText();
  }

  wrapper::Wrapper delta = MustLoadWrapper("anbn_delta.elog");
  auto delta_report =
      elog::LintWrapper(delta.program, delta.extraction_patterns);
  ASSERT_TRUE(delta_report.ok());
  EXPECT_TRUE(delta_report->delta_builtins);
  EXPECT_TRUE(delta_report->clean());

  wrapper::Wrapper dirty = MustLoadWrapper("lint_dirty.elog");
  auto report = elog::LintWrapper(dirty.program, dirty.extraction_patterns);
  ASSERT_TRUE(report.ok());
  std::vector<elog::LintFinding::Kind> kinds;
  for (const elog::LintFinding& f : report->findings) kinds.push_back(f.kind);
  const std::vector<elog::LintFinding::Kind> expected = {
      elog::LintFinding::Kind::kDuplicateRule,
      elog::LintFinding::Kind::kSubsumedRule,
      elog::LintFinding::Kind::kUnsatBody,
      elog::LintFinding::Kind::kUnderivableBody,
      elog::LintFinding::Kind::kDeadRule,
      elog::LintFinding::Kind::kRedundantLiterals,
      elog::LintFinding::Kind::kUnusedPattern,
      elog::LintFinding::Kind::kUnusedPattern,
  };
  EXPECT_EQ(kinds, expected) << report->ToText();
}

TEST(WrapperCorpusTest, EquivalenceVerdictsPinned) {
  auto tmnf_of = [](const wrapper::Wrapper& w, const std::string& pattern) {
    auto datalog = elog::ElogToDatalog(w.program, pattern);
    EXPECT_TRUE(datalog.ok());
    auto t = tmnf::ToTmnf(*datalog);
    EXPECT_TRUE(t.ok());
    return std::move(*t);
  };
  ContainmentOptions opts;

  // The redundant catalog revision is extraction-equivalent to the clean one
  // on every pattern.
  wrapper::Wrapper clean = MustLoadWrapper("catalog_clean.elog");
  wrapper::Wrapper redundant = MustLoadWrapper("catalog_redundant.elog");
  ASSERT_EQ(clean.extraction_patterns, redundant.extraction_patterns);
  for (const std::string& pattern : clean.extraction_patterns) {
    core::Program a = tmnf_of(clean, pattern);
    core::Program b = tmnf_of(redundant, pattern);
    auto eq = analysis::Equivalent(a, b, opts);
    ASSERT_TRUE(eq.ok()) << eq.status().message();
    EXPECT_EQ(eq->verdict, Verdict::kContained) << pattern;
  }

  // The broken news revision differs on 'headline', with a witness page.
  wrapper::Wrapper news = MustLoadWrapper("news_clean.elog");
  wrapper::Wrapper broken = MustLoadWrapper("news_broken.elog");
  core::Program a = tmnf_of(news, "headline");
  core::Program b = tmnf_of(broken, "headline");
  auto eq = analysis::Equivalent(a, b, opts);
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->verdict, Verdict::kNotContained);
  // The clean wrapper extracts strictly more (broken adds leaf(Y)), so the
  // forward direction refutes — with a concrete counterexample page.
  // Equivalent() short-circuits before trying the backward direction.
  EXPECT_EQ(eq->forward.verdict, Verdict::kNotContained);
  ASSERT_TRUE(eq->forward.witness_tree.has_value());
}

/// Concurrent lint stress (tsan-labeled via analysis_test): the analysis
/// entry points share no mutable state, so parallel lints of the same parsed
/// wrappers must be race-free and give identical reports.
TEST(WrapperCorpusConcurrencyTest, ParallelLintIsRaceFree) {
  const std::vector<std::string> corpus = {
      "catalog_clean.elog", "catalog_redundant.elog", "lint_dirty.elog",
      "news_broken.elog",   "anbn_delta.elog"};
  std::vector<wrapper::Wrapper> wrappers;
  std::vector<std::string> expected_reports;
  std::vector<uint64_t> expected_keys;
  for (const std::string& name : corpus) {
    wrappers.push_back(MustLoadWrapper(name));
    auto report = elog::LintWrapper(wrappers.back().program,
                                    wrappers.back().extraction_patterns);
    ASSERT_TRUE(report.ok());
    expected_reports.push_back(report->ToText());
    auto key = analysis::CanonicalWrapperKey(
        wrappers.back().program, wrappers.back().extraction_patterns);
    ASSERT_TRUE(key.ok());
    expected_keys.push_back(key->fingerprint);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < wrappers.size(); ++i) {
          auto report = elog::LintWrapper(wrappers[i].program,
                                          wrappers[i].extraction_patterns);
          auto key = analysis::CanonicalWrapperKey(
              wrappers[i].program, wrappers[i].extraction_patterns);
          if (!report.ok() || report->ToText() != expected_reports[i] ||
              !key.ok() || key->fingerprint != expected_keys[i]) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

}  // namespace
