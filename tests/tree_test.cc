#include <gtest/gtest.h>

#include "src/tree/binary.h"
#include "src/tree/generator.h"
#include "src/tree/ranked.h"
#include "src/tree/serialize.h"
#include "src/tree/tree.h"
#include "src/util/rng.h"

namespace mdatalog::tree {
namespace {

Tree SmallTree() {
  // a(b, c(d, e), f)
  TreeBuilder b;
  NodeId r = b.Root("a");
  b.Child(r, "b");
  NodeId c = b.Child(r, "c");
  b.Child(c, "d");
  b.Child(c, "e");
  b.Child(r, "f");
  return b.Build();
}

TEST(TreeTest, BuilderLinksSiblingsAndParents) {
  Tree t = SmallTree();
  ASSERT_EQ(t.size(), 6);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.label_name(0), "a");
  std::vector<NodeId> kids = t.Children(0);
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(t.label_name(kids[0]), "b");
  EXPECT_EQ(t.label_name(kids[1]), "c");
  EXPECT_EQ(t.label_name(kids[2]), "f");
  EXPECT_EQ(t.parent(kids[1]), 0);
  EXPECT_EQ(t.next_sibling(kids[0]), kids[1]);
  EXPECT_EQ(t.prev_sibling(kids[1]), kids[0]);
  EXPECT_EQ(t.first_child(0), kids[0]);
  EXPECT_EQ(t.last_child(0), kids[2]);
}

TEST(TreeTest, UnaryRelationsOfTauUr) {
  Tree t = SmallTree();
  // root
  EXPECT_TRUE(t.IsRoot(0));
  EXPECT_FALSE(t.IsRoot(1));
  // leaf
  EXPECT_TRUE(t.IsLeaf(1));
  EXPECT_FALSE(t.IsLeaf(2));
  EXPECT_TRUE(t.IsLeaf(5));
  // lastsibling: root is NOT a last sibling (paper, Section 2).
  EXPECT_FALSE(t.IsLastSibling(0));
  EXPECT_TRUE(t.IsLastSibling(5));   // f
  EXPECT_TRUE(t.IsLastSibling(4));   // e
  EXPECT_FALSE(t.IsLastSibling(1));  // b
  // firstsibling symmetric
  EXPECT_FALSE(t.IsFirstSibling(0));
  EXPECT_TRUE(t.IsFirstSibling(1));
  EXPECT_TRUE(t.IsFirstSibling(3));
  EXPECT_FALSE(t.IsFirstSibling(5));
}

TEST(TreeTest, ChildKIsOneBased) {
  Tree t = SmallTree();
  EXPECT_EQ(t.ChildK(0, 1), 1);
  EXPECT_EQ(t.ChildK(0, 2), 2);
  EXPECT_EQ(t.ChildK(0, 3), 5);
  EXPECT_EQ(t.ChildK(0, 4), kNoNode);
  EXPECT_EQ(t.ChildK(1, 1), kNoNode);
}

TEST(TreeTest, DepthHeightArity) {
  Tree t = SmallTree();
  EXPECT_EQ(t.Depth(0), 0);
  EXPECT_EQ(t.Depth(3), 2);
  EXPECT_EQ(t.Height(), 2);
  EXPECT_EQ(t.MaxArity(), 3);
  EXPECT_EQ(t.NumChildren(2), 2);
}

TEST(TreeTest, AncestorCheck) {
  Tree t = SmallTree();
  EXPECT_TRUE(t.IsAncestor(0, 3));
  EXPECT_TRUE(t.IsAncestor(2, 4));
  EXPECT_FALSE(t.IsAncestor(3, 2));
  EXPECT_FALSE(t.IsAncestor(3, 3));  // not a *proper* ancestor
  EXPECT_FALSE(t.IsAncestor(1, 3));
}

TEST(TreeTest, PreorderIsDocumentOrder) {
  Tree t = SmallTree();
  std::vector<NodeId> order = t.Preorder();
  // Built in document order, so ids are already sorted.
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<NodeId>(i));
  }
  std::vector<int32_t> rank = t.PreorderRanks();
  for (NodeId n = 0; n < t.size(); ++n) EXPECT_EQ(rank[n], n);
}

TEST(TreeTest, TextPayload) {
  TreeBuilder b;
  NodeId r = b.Root("p");
  NodeId c = b.Child(r, "text");
  b.SetText(c, "hello");
  Tree t = b.Build();
  EXPECT_EQ(t.text(c), "hello");
  EXPECT_EQ(t.text(r), "");
  EXPECT_TRUE(t.HasText(c));
  EXPECT_FALSE(t.HasText(r));
  EXPECT_EQ(t.SubtreeText(r), "hello");
}

TEST(TreeTest, EqualityIsStructuralAndLabelBased) {
  Tree a = SmallTree();
  Tree b = SmallTree();
  EXPECT_TRUE(TreesEqual(a, b));
  TreeBuilder tb;
  NodeId r = tb.Root("a");
  tb.Child(r, "b");
  Tree c = tb.Build();
  EXPECT_FALSE(TreesEqual(a, c));
}

TEST(TreeTest, EqualityDifferentInternOrder) {
  // Same tree built with different label-interning order must compare equal.
  TreeBuilder b1;
  NodeId r1 = b1.Root("x");
  b1.Child(r1, "y");
  Tree t1 = b1.Build();

  TreeBuilder b2;
  NodeId r2 = b2.Root("x");  // interner here sees "x" first too, so force skew:
  NodeId c2 = b2.Child(r2, "y");
  (void)c2;
  Tree t2 = b2.Build();
  EXPECT_TRUE(TreesEqual(t1, t2));
}

TEST(TreeTest, DebugString) {
  EXPECT_EQ(ToDebugString(SmallTree()), "a(b,c(d,e),f)");
  EXPECT_EQ(ToDebugString(ChainTree(3, "z")), "z(z(z))");
}

TEST(BinaryEncodingTest, Figure1Encoding) {
  // Figure 1: n1 -fc-> n2, n2 -ns-> n3, n3 -fc-> n4, n4 -ns-> n5, n3 -ns-> n6.
  Tree t = PaperFigure1Tree();
  BinaryTree b = EncodeFirstChildNextSibling(t);
  // Node ids: n1=0, n2=1, n3=2, n4=3, n5=4, n6=5.
  EXPECT_EQ(b.nodes[0].left, 1);
  EXPECT_EQ(b.nodes[0].right, kNoNode);
  EXPECT_EQ(b.nodes[1].left, kNoNode);
  EXPECT_EQ(b.nodes[1].right, 2);
  EXPECT_EQ(b.nodes[2].left, 3);
  EXPECT_EQ(b.nodes[2].right, 5);
  EXPECT_EQ(b.nodes[3].right, 4);
  EXPECT_EQ(b.nodes[4].right, kNoNode);
  EXPECT_EQ(b.nodes[5].right, kNoNode);
}

TEST(BinaryEncodingTest, RoundTripSmall) {
  Tree t = SmallTree();
  auto back = DecodeFirstChildNextSibling(EncodeFirstChildNextSibling(t));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(TreesEqual(t, *back));
}

TEST(BinaryEncodingTest, RoundTripRandomProperty) {
  util::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    Tree t = RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(80)),
                        {"a", "b", "c"});
    auto back = DecodeFirstChildNextSibling(EncodeFirstChildNextSibling(t));
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(TreesEqual(t, *back)) << ToDebugString(t);
  }
}

TEST(BinaryEncodingTest, DecodeRejectsRootWithRightChild) {
  BinaryTree b;
  b.nodes.push_back({.label = "a", .left = kNoNode, .right = 1});
  b.nodes.push_back({.label = "b", .left = kNoNode, .right = kNoNode});
  b.root = 0;
  EXPECT_FALSE(DecodeFirstChildNextSibling(b).ok());
}

TEST(BinaryEncodingTest, DecodeRejectsEmpty) {
  BinaryTree b;
  EXPECT_FALSE(DecodeFirstChildNextSibling(b).ok());
}

TEST(GeneratorTest, CompleteBinaryTreeSize) {
  for (int32_t d = 0; d <= 6; ++d) {
    Tree t = CompleteBinaryTree(d, "a");
    EXPECT_EQ(t.size(), (1 << (d + 1)) - 1);
    EXPECT_EQ(t.Height(), d);
    EXPECT_LE(t.MaxArity(), 2);
  }
}

TEST(GeneratorTest, ChainTree) {
  Tree t = ChainTree(5, "a");
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.Height(), 4);
  EXPECT_EQ(t.MaxArity(), 1);
}

TEST(GeneratorTest, ChildrenWord) {
  Tree t = ChildrenWord("r", {"a", "a", "b"});
  EXPECT_EQ(t.size(), 4);
  EXPECT_EQ(t.label_name(0), "r");
  EXPECT_EQ(t.label_name(1), "a");
  EXPECT_EQ(t.label_name(3), "b");
}

TEST(GeneratorTest, RandomTreeRespectsSizeAndLabels) {
  util::Rng rng(1);
  Tree t = RandomTree(rng, 200, {"x", "y"});
  EXPECT_EQ(t.size(), 200);
  for (NodeId n = 0; n < t.size(); ++n) {
    EXPECT_TRUE(t.label_name(n) == "x" || t.label_name(n) == "y");
  }
}

TEST(GeneratorTest, RandomBoundedArity) {
  util::Rng rng(5);
  Tree t = RandomBoundedArityTree(rng, 300, {"a"}, 2);
  EXPECT_EQ(t.size(), 300);
  EXPECT_LE(t.MaxArity(), 2);
}

TEST(GeneratorTest, PaperTrees) {
  EXPECT_EQ(ToDebugString(PaperExample32Tree()), "a(a,a,a)");
  EXPECT_EQ(ToDebugString(PaperFigure1Tree()), "a(a,a(a,a),a)");
  EXPECT_EQ(ToDebugString(PaperExample49Tree()), "a(a,a)");
}

TEST(RankedAlphabetTest, ValidatesArity) {
  RankedAlphabet sigma;
  sigma.Declare("f", 2);
  sigma.Declare("g", 1);
  sigma.Declare("c", 0);
  EXPECT_EQ(sigma.MaxRank(), 2);
  EXPECT_EQ(sigma.RankOf("f"), 2);
  EXPECT_EQ(sigma.RankOf("nope"), -1);

  TreeBuilder b;
  NodeId r = b.Root("f");
  NodeId g = b.Child(r, "g");
  b.Child(g, "c");
  b.Child(r, "c");
  Tree ok = b.Build();
  EXPECT_TRUE(sigma.Validate(ok).ok());

  TreeBuilder b2;
  NodeId r2 = b2.Root("f");
  b2.Child(r2, "c");
  Tree bad = b2.Build();  // f should have 2 children
  EXPECT_FALSE(sigma.Validate(bad).ok());
}

TEST(RankedAlphabetTest, MaxArityCheck) {
  Tree t = PaperExample32Tree();  // root has 3 children
  EXPECT_TRUE(ValidateMaxArity(t, 3).ok());
  EXPECT_FALSE(ValidateMaxArity(t, 2).ok());
}

TEST(SerializeTest, SimpleXml) {
  TreeBuilder b;
  NodeId r = b.Root("item");
  NodeId name = b.Child(r, "name");
  b.SetText(name, "Widget <1> & \"co\"");
  Tree t = b.Build();
  std::string xml = ToXml(t, -1);
  EXPECT_EQ(xml,
            "<item><name>Widget &lt;1&gt; &amp; &quot;co&quot;</name></item>");
}

TEST(SerializeTest, IndentedXmlHasNewlines) {
  Tree t = SmallTree();
  std::string xml = ToXml(t, 2);
  EXPECT_NE(xml.find("<a>\n"), std::string::npos);
  EXPECT_NE(xml.find("  <b></b>"), std::string::npos);
}

}  // namespace
}  // namespace mdatalog::tree
