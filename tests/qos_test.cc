// Multi-tenant QoS: the keyed SipHash the caches route by, the tenant
// registry (cache shares, CPU token buckets, priority → deadline
// degradation) and fair-share eviction in ShardedLfuCache. The load-bearing
// properties pinned here:
//
//  * SipHash-2-4 matches the reference vectors — the keyed hash must be the
//    real thing, not a lookalike, for its collision-resistance argument to
//    transfer;
//
//  * a tenant whose resident bytes sit within its guaranteed share cannot be
//    evicted by another tenant's traffic — including an adversarial 8-thread
//    cold-scan flood against a hot set (and the control run with fair share
//    off shows the flood *would* have evicted it);
//
//  * over-quota degrades the deadline by priority class, never rejects, and
//    never loosens a deadline the caller already set;
//
//  * per-tenant accounting (counters, byte slices, hit/miss slices) stays
//    exactly consistent under concurrent traffic (runs under TSan via the
//    `tsan` label).

#include <chrono>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/elog/ast.h"
#include "src/html/synthetic.h"
#include "src/runtime/document_cache.h"
#include "src/runtime/runtime.h"
#include "src/runtime/sharded_lfu_cache.h"
#include "src/runtime/tenant.h"
#include "src/telemetry/metrics.h"
#include "src/util/deadline.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

// ---------------------------------------------------------------------------
// SipHash-2-4 reference vectors
// ---------------------------------------------------------------------------

/// The reference-implementation test key: k0/k1 are the little-endian reads
/// of the byte string 00 01 02 … 0f.
util::SipHashKey ReferenceKey() {
  return util::SipHashKey{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
}

TEST(SipHashTest, MatchesReferenceVectors) {
  // vectors_sip64 from the SipHash reference implementation: input is the
  // byte string 00 01 02 … of the given length, output read little-endian.
  const uint64_t kExpected[] = {
      0x726fdb47dd0e0e31ULL,  // len 0
      0x74f839c593dc67fdULL,  // len 1
      0x0d6c8009d9a94f5aULL,  // len 2
      0x85676696d7fb7e2dULL,  // len 3
      0xcf2794e0277187b7ULL,  // len 4
      0x18765564cd99a68dULL,  // len 5
      0xcbc9466e58fee3ceULL,  // len 6
      0xab0200f58b01d137ULL,  // len 7
      0x93f5f5799a932462ULL,  // len 8 (exactly one compression block)
  };
  unsigned char msg[8];
  for (int i = 0; i < 8; ++i) msg[i] = static_cast<unsigned char>(i);
  for (size_t len = 0; len < std::size(kExpected); ++len) {
    util::SipHasher h(ReferenceKey());
    h.Update(msg, len);
    EXPECT_EQ(h.Finish(), kExpected[len]) << "input length " << len;
  }
}

TEST(SipHashTest, ChunkedUpdatesMatchOneShot) {
  std::string msg;
  for (int i = 0; i < 64; ++i) msg.push_back(static_cast<char>(i * 7 + 3));
  util::SipHasher oneshot(ReferenceKey());
  oneshot.Update(msg);
  const uint64_t expected = oneshot.Finish();
  // Split at boundaries that exercise the partial-block buffer: mid-word,
  // word-aligned, and straddling.
  for (size_t cut1 : {size_t{1}, size_t{3}, size_t{7}, size_t{8}, size_t{13},
                      size_t{32}}) {
    for (size_t cut2 : {cut1 + 1, cut1 + 8, size_t{63}}) {
      util::SipHasher h(ReferenceKey());
      h.Update(msg.substr(0, cut1));
      h.Update(msg.substr(cut1, cut2 - cut1));
      h.Update(msg.substr(cut2));
      EXPECT_EQ(h.Finish(), expected) << "cuts " << cut1 << "/" << cut2;
    }
  }
}

TEST(SipHashTest, Update64IsLittleEndianByteFeed) {
  const uint64_t v = 0x1122334455667788ULL;
  util::SipHasher word(ReferenceKey());
  word.Update64(v);
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  util::SipHasher raw(ReferenceKey());
  raw.Update(bytes, 8);
  EXPECT_EQ(word.Finish(), raw.Finish());
}

TEST(SipHashTest, ProcessKeyIsStableWithinProcessAndKeyed) {
  // Same input, same (process) key → same hash: cache keys must be stable
  // for the process lifetime.
  EXPECT_EQ(util::SipHash("some page bytes"), util::SipHash("some page bytes"));
  // A different key changes the hash — the whole point of keying. (A
  // coincidental 64-bit collision here has probability 2^-64.)
  const util::SipHashKey other{0xdeadbeefcafef00dULL, 0x0123456789abcdefULL};
  EXPECT_NE(util::SipHash("some page bytes", ReferenceKey()),
            util::SipHash("some page bytes", other));
}

// ---------------------------------------------------------------------------
// TenantRegistry: shares, token bucket, priority degradation
// ---------------------------------------------------------------------------

TEST(TenantRegistryTest, DefaultTenantIsAlwaysPresentAndUnmetered) {
  runtime::TenantRegistry tr;
  EXPECT_EQ(tr.num_tenants(), 1);
  EXPECT_EQ(tr.name(runtime::kDefaultTenant), "default");
  EXPECT_FALSE(tr.metered(runtime::kDefaultTenant));
  EXPECT_DOUBLE_EQ(tr.ShareOf(runtime::kDefaultTenant), 1.0);
  auto adm = tr.Admit(runtime::kDefaultTenant, util::Deadline::Infinite());
  EXPECT_FALSE(adm.degraded);
  EXPECT_FALSE(adm.deadline.has_deadline());
  // Unknown ids serve as the default tenant rather than crashing.
  EXPECT_EQ(tr.name(42), "default");
  EXPECT_EQ(tr.counters(42), tr.counters(runtime::kDefaultTenant));
}

TEST(TenantRegistryTest, SharesAreWeightOverTotalWeight) {
  runtime::TenantRegistry tr;
  const auto a = tr.Register({.name = "a", .cache_weight = 2.0});
  const auto b = tr.Register({.name = "b", .cache_weight = 1.0});
  ASSERT_EQ(a, 1);
  ASSERT_EQ(b, 2);
  EXPECT_EQ(tr.num_tenants(), 3);
  // default(1) + a(2) + b(1) = 4.
  EXPECT_DOUBLE_EQ(tr.ShareOf(a), 0.5);
  EXPECT_DOUBLE_EQ(tr.ShareOf(b), 0.25);
  EXPECT_DOUBLE_EQ(tr.ShareOf(runtime::kDefaultTenant), 0.25);
  // A non-positive weight normalizes to 1 so ShareOf stays in (0, 1].
  const auto c = tr.Register({.name = "c", .cache_weight = -3.0});
  EXPECT_DOUBLE_EQ(tr.ShareOf(c), 0.2);
}

TEST(TenantRegistryTest, TokenBucketStartsFullAndOverdraftDegrades) {
  runtime::TenantRegistry tr;
  // Refill rate 1 ns of CPU per second of wall time: effectively frozen for
  // the duration of the test, so the arithmetic is deterministic.
  const auto t = tr.Register({.name = "metered",
                              .cpu_ns_per_sec = 1,
                              .cpu_burst_ns = 1 << 20});
  EXPECT_TRUE(tr.metered(t));
  // Starts full (bursts allowed), capped at the burst depth.
  EXPECT_LE(tr.cpu_balance_ns(t), 1 << 20);
  EXPECT_GE(tr.cpu_balance_ns(t), (1 << 20) - 8);
  // Within budget: no degradation.
  auto adm = tr.Admit(t, util::Deadline::Infinite());
  EXPECT_FALSE(adm.degraded);
  // Overdraft: the balance goes negative (charging is not clamped) …
  tr.ChargeCpu(t, 1 << 21);
  EXPECT_LT(tr.cpu_balance_ns(t), 0);
  // … and the next admission degrades the deadline instead of rejecting.
  adm = tr.Admit(t, util::Deadline::Infinite());
  EXPECT_TRUE(adm.degraded);
  EXPECT_TRUE(adm.deadline.has_deadline());
}

TEST(TenantRegistryTest, PriorityClassesDegradeDifferently) {
  runtime::TenantRegistry tr;
  auto metered = [&tr](const char* name, runtime::Priority p) {
    const auto id = tr.Register({.name = name,
                                 .cpu_ns_per_sec = 1,
                                 .cpu_burst_ns = 1000,
                                 .priority = p});
    tr.ChargeCpu(id, 1 << 20);  // deep overdraft, frozen refill
    return id;
  };
  const auto high = metered("high", runtime::Priority::kHigh);
  const auto low = metered("low", runtime::Priority::kLow);
  const auto normal = metered("normal", runtime::Priority::kNormal);

  // High priority never degrades: over quota keeps its latency contract.
  auto adm_high = tr.Admit(high, util::Deadline::Infinite());
  EXPECT_FALSE(adm_high.degraded);
  EXPECT_FALSE(adm_high.deadline.has_deadline());

  // Low degrades harder than normal (5ms vs 25ms caps). Admitting low first
  // makes the comparison robust: normal's cap is anchored at a later "now",
  // so normal's deadline is strictly after low's.
  auto adm_low = tr.Admit(low, util::Deadline::Infinite());
  auto adm_normal = tr.Admit(normal, util::Deadline::Infinite());
  ASSERT_TRUE(adm_low.degraded);
  ASSERT_TRUE(adm_normal.degraded);
  ASSERT_TRUE(adm_low.deadline.has_deadline());
  ASSERT_TRUE(adm_normal.deadline.has_deadline());
  EXPECT_LT(adm_low.deadline.at(), adm_normal.deadline.at());
}

TEST(TenantRegistryTest, DegradationTightensButNeverLoosens) {
  runtime::TenantRegistry tr;
  const auto t = tr.Register({.name = "metered",
                              .cpu_ns_per_sec = 1,
                              .cpu_burst_ns = 1000});
  tr.ChargeCpu(t, 1 << 20);
  // The caller's own deadline is already tighter than the 25ms degradation
  // cap: it must survive unchanged (EarlierOf), with the over-quota flag set.
  const auto requested = util::Deadline::After(std::chrono::microseconds(100));
  auto adm = tr.Admit(t, requested);
  EXPECT_TRUE(adm.degraded);
  EXPECT_EQ(adm.deadline.at(), requested.at());
}

TEST(TenantRegistryTest, CountersAccumulateInTheSharedRegistry) {
  telemetry::MetricsRegistry metrics;
  runtime::TenantRegistry tr(&metrics);
  const auto t = tr.Register({.name = "alpha"});
  tr.Admit(t, util::Deadline::Infinite());
  tr.Admit(t, util::Deadline::Infinite());
  tr.ChargeCpu(t, 500);
  EXPECT_EQ(tr.counters(t)->requests->Value(), 2);
  EXPECT_EQ(tr.counters(t)->cpu_ns->Value(), 500);
  // The counters live under "tenant.<name>.*" in the caller's registry, so
  // they ride the standard exporters.
  EXPECT_EQ(metrics.GetCounter("tenant.alpha.requests")->Value(), 2);
  EXPECT_EQ(metrics.GetCounter("tenant.alpha.cpu_ns")->Value(), 500);
}

// ---------------------------------------------------------------------------
// Fair-share eviction on the cache template (deterministic, single shard)
// ---------------------------------------------------------------------------

using TestCache =
    runtime::ShardedLfuCache<uint64_t, std::string, std::hash<uint64_t>>;

int64_t SizeCost(const uint64_t&, const std::string& v) {
  return static_cast<int64_t>(v.size());
}

/// Distinct, well-mixed 64-bit hash per key (the caches use SipHash; the
/// template itself only needs *a* hash).
uint64_t MixHash(uint64_t key) {
  uint64_t x = key + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::shared_ptr<const std::string> Blob(size_t bytes) {
  return std::make_shared<const std::string>(bytes, 'x');
}

TEST(FairShareCacheTest, WithinShareTenantSurvivesAnotherTenantsFlood) {
  runtime::TenantRegistry tr;
  const auto a = tr.Register({.name = "a"});
  const auto b = tr.Register({.name = "b"});
  // default + a + b, equal weights: everyone's guaranteed share is 1/3 of
  // the 3000-byte single shard = 1000 bytes.
  runtime::CacheOptions opts{.byte_budget = 3000,
                             .num_shards = 1,
                             .tinylfu_admission = false};
  TestCache cache(opts, &SizeCost, &tr);

  // A fills exactly its guaranteed share: 5 × 200 bytes.
  for (uint64_t k = 1; k <= 5; ++k) {
    auto out = cache.Insert(k, MixHash(k), Blob(200), a);
    ASSERT_TRUE(out.admitted);
  }
  // B floods 40 cold entries. Once the shard fills, every eviction lands on
  // B's own older entries — A's are at the LRU tail but protected.
  for (uint64_t k = 100; k < 140; ++k) {
    cache.Insert(k, MixHash(k), Blob(200), b);
  }

  for (uint64_t k = 1; k <= 5; ++k) {
    EXPECT_NE(cache.Lookup(k, MixHash(k), a), nullptr) << "A's key " << k;
  }
  EXPECT_EQ(cache.tenant_stats(a).bytes, 1000);
  EXPECT_EQ(cache.tenant_stats(b).bytes, 2000);  // the rest of the budget
  EXPECT_EQ(cache.stats().fair_share_rejects, 0);
  // 40 B-inserts into 10 remaining slots: 30 of B's own evicted.
  EXPECT_EQ(cache.stats().evictions, 30);
}

TEST(FairShareCacheTest, FairShareOffLetsTheFloodEvictEverything) {
  runtime::TenantRegistry tr;
  const auto a = tr.Register({.name = "a"});
  const auto b = tr.Register({.name = "b"});
  runtime::CacheOptions opts{.byte_budget = 3000,
                             .num_shards = 1,
                             .tinylfu_admission = false,
                             .fair_share = false};
  TestCache cache(opts, &SizeCost, &tr);

  for (uint64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(cache.Insert(k, MixHash(k), Blob(200), a).admitted);
  }
  for (uint64_t k = 100; k < 140; ++k) {
    cache.Insert(k, MixHash(k), Blob(200), b);
  }
  // Plain LRU: A's older entries were the tail and are gone.
  for (uint64_t k = 1; k <= 5; ++k) {
    EXPECT_EQ(cache.Lookup(k, MixHash(k), a), nullptr) << "A's key " << k;
  }
  EXPECT_EQ(cache.tenant_stats(a).bytes, 0);
}

TEST(FairShareCacheTest, AllVictimsProtectedRejectsTheCandidateUncached) {
  runtime::TenantRegistry tr;
  const auto a = tr.Register({.name = "a"});
  const auto b = tr.Register({.name = "b"});
  // Guaranteed share: 2000/3 ≈ 666 bytes each.
  runtime::CacheOptions opts{.byte_budget = 2000,
                             .num_shards = 1,
                             .tinylfu_admission = false};
  TestCache cache(opts, &SizeCost, &tr);

  // A parks 9 small entries (630 bytes, within share) — more entries than
  // the victim-scan cap, so B's eviction walk sees only protected entries.
  for (uint64_t k = 1; k <= 9; ++k) {
    ASSERT_TRUE(cache.Insert(k, MixHash(k), Blob(70), a).admitted);
  }
  auto out = cache.Insert(500, MixHash(500), Blob(1500), b);
  EXPECT_FALSE(out.admitted);
  EXPECT_TRUE(out.fair_share_rejected);
  ASSERT_NE(out.value, nullptr);  // still served, just uncached
  EXPECT_EQ(out.value->size(), 1500u);
  EXPECT_EQ(cache.stats().fair_share_rejects, 1);
  EXPECT_EQ(cache.tenant_stats(b).fair_share_rejects, 1);
  // A's entries were not touched.
  EXPECT_EQ(cache.tenant_stats(a).bytes, 630);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(FairShareCacheTest, TenantsChurnWithinTheirOwnShare) {
  runtime::TenantRegistry tr;
  const auto a = tr.Register({.name = "a"});
  runtime::CacheOptions opts{.byte_budget = 1000,
                             .num_shards = 1,
                             .tinylfu_admission = false};
  TestCache cache(opts, &SizeCost, &tr);
  // A alone floods past the whole budget: fair share never protects a
  // tenant from itself, so this is plain LRU churn.
  for (uint64_t k = 1; k <= 20; ++k) {
    auto out = cache.Insert(k, MixHash(k), Blob(250), a);
    EXPECT_TRUE(out.admitted) << "key " << k;
  }
  EXPECT_EQ(cache.stats().fair_share_rejects, 0);
  EXPECT_EQ(cache.stats().evictions, 16);  // 4 resident at 250 bytes each
  EXPECT_LE(cache.tenant_stats(a).bytes, 1000);
}

// ---------------------------------------------------------------------------
// Adversarial: an 8-thread cold flood against another tenant's hot set
// ---------------------------------------------------------------------------

std::string CatalogPage(uint64_t seed) {
  util::Rng rng(seed);
  html::CatalogOptions opts;
  opts.num_items = 10;
  opts.with_ads = (seed % 3 != 0);
  return html::ProductCatalogPage(rng, opts);
}

/// Runs hot-tenant-vs-flood through a single-shard DocumentCache and returns
/// the hot tenant's miss delta when it re-requests its hot set after the
/// flood. 0 = fully protected.
int64_t HotSetMissesAfterFlood(bool fair_share) {
  runtime::TenantRegistry tr;
  // The hot tenant pays for twice the weight: its guaranteed share is half
  // the cache (hot(2) / [default(1) + hot(2) + flood(1)]).
  const auto hot = tr.Register({.name = "hot", .cache_weight = 2.0});
  const auto flood = tr.Register({.name = "flood", .cache_weight = 1.0});

  std::vector<std::string> hot_pages;
  int64_t hot_bytes = 0;
  for (uint64_t s = 1; s <= 4; ++s) {
    hot_pages.push_back(CatalogPage(s));
    auto probe = runtime::CachedDocument::Parse(hot_pages.back(), "class");
    EXPECT_TRUE(probe.ok());
    hot_bytes += (*probe)->ApproxBytes();
  }

  runtime::DocumentCacheOptions opts;
  // Budget 3× the hot set: the hot tenant's guaranteed half covers its hot
  // set with slack, and TinyLFU is off so only fair share can save it from
  // the flood (the admission filter would mask the property under test).
  opts.cache = {.byte_budget = 3 * hot_bytes,
                .num_shards = 1,
                .tinylfu_admission = false,
                .fair_share = fair_share};
  opts.tenants = &tr;
  runtime::DocumentCache cache(opts);

  // Phase 1: the hot tenant populates its working set.
  for (const auto& page : hot_pages) {
    auto doc = cache.GetOrParse(page, "class", util::HashBytes128(page),
                                nullptr, hot);
    EXPECT_TRUE(doc.ok());
  }
  EXPECT_EQ(cache.tenant_stats(hot).misses, 4);

  // Phase 2: 8 flood threads, 16 distinct cold pages each — 128 one-hit
  // pages against a 12-page budget.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &tr, flood, t] {
      for (int i = 0; i < 16; ++i) {
        const std::string page =
            CatalogPage(10000 + static_cast<uint64_t>(t) * 100 + i);
        auto doc = cache.GetOrParse(page, "class", util::HashBytes128(page),
                                    nullptr, flood);
        EXPECT_TRUE(doc.ok());
        // The flood also burns CPU quota — exercise the charge path under
        // concurrency while we're here.
        tr.ChargeCpu(flood, 1000);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Phase 3: the hot tenant returns. Count its new misses.
  const int64_t misses_before = cache.tenant_stats(hot).misses;
  for (const auto& page : hot_pages) {
    auto doc = cache.GetOrParse(page, "class", util::HashBytes128(page),
                                nullptr, hot);
    EXPECT_TRUE(doc.ok());
  }
  return cache.tenant_stats(hot).misses - misses_before;
}

TEST(FairShareAdversarialTest, HotSetSurvivesEightThreadColdFlood) {
  EXPECT_EQ(HotSetMissesAfterFlood(/*fair_share=*/true), 0);
}

TEST(FairShareAdversarialTest, ControlRunWithoutFairShareLosesTheHotSet) {
  // The same flood against plain LRU evicts the whole hot set — this is
  // what makes the protected run above meaningful.
  EXPECT_EQ(HotSetMissesAfterFlood(/*fair_share=*/false), 4);
}

// ---------------------------------------------------------------------------
// Concurrent accounting stress (TSan surface)
// ---------------------------------------------------------------------------

TEST(QosStressTest, ConcurrentAccountingStaysConsistent) {
  telemetry::MetricsRegistry metrics;
  runtime::TenantRegistry tr(&metrics);
  const auto a = tr.Register({.name = "a",
                              .cpu_ns_per_sec = 1,
                              .cpu_burst_ns = 1LL << 40});
  const auto b = tr.Register({.name = "b",
                              .cpu_ns_per_sec = 1,
                              .cpu_burst_ns = 1LL << 40});
  runtime::CacheOptions opts{.byte_budget = 64 << 10,
                             .num_shards = 4,
                             .tinylfu_admission = false};
  TestCache cache(opts, &SizeCost, &tr);

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  constexpr int64_t kChargeNs = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto tenant = (t % 2 == 0) ? a : b;
      for (int i = 0; i < kIters; ++i) {
        tr.Admit(tenant, util::Deadline::Infinite());
        tr.ChargeCpu(tenant, kChargeNs);
        const uint64_t key = static_cast<uint64_t>(t) * 100000 + i;
        cache.Insert(key, MixHash(key), Blob(64), tenant);
        cache.Lookup(key, MixHash(key), tenant);
        // Contended keys: all threads fight over the same 16 entries.
        const uint64_t shared_key = 1u + (i % 16);
        cache.Lookup(shared_key, MixHash(shared_key), tenant);
        cache.Insert(shared_key, MixHash(shared_key), Blob(64), tenant);
      }
    });
  }
  for (auto& t : threads) t.join();

  const int64_t per_tenant = (kThreads / 2) * kIters;
  EXPECT_EQ(tr.counters(a)->requests->Value(), per_tenant);
  EXPECT_EQ(tr.counters(b)->requests->Value(), per_tenant);
  EXPECT_EQ(tr.counters(a)->cpu_ns->Value(), per_tenant * kChargeNs);
  EXPECT_EQ(tr.counters(b)->cpu_ns->Value(), per_tenant * kChargeNs);
  // Every charged nanosecond left the bucket (refill is ~frozen at 1 ns/s).
  EXPECT_LE(tr.cpu_balance_ns(a), (1LL << 40) - per_tenant * kChargeNs);

  // The per-tenant slices partition the cache totals exactly — no lost or
  // double-counted bytes/hits/misses under contention.
  const auto total = cache.stats();
  runtime::TenantCacheStats sum;
  for (runtime::TenantId id : {runtime::kDefaultTenant, a, b}) {
    const auto s = cache.tenant_stats(id);
    sum.hits += s.hits;
    sum.misses += s.misses;
    sum.bytes += s.bytes;
    sum.fair_share_rejects += s.fair_share_rejects;
  }
  EXPECT_EQ(sum.hits, total.hits);
  EXPECT_EQ(sum.misses, total.misses);
  EXPECT_EQ(sum.bytes, total.bytes_in_use);
  EXPECT_EQ(sum.fair_share_rejects, total.fair_share_rejects);
  EXPECT_LE(total.bytes_in_use, total.byte_budget);
  EXPECT_EQ(total.bytes_in_use, static_cast<int64_t>(total.entries) * 64);
}

// ---------------------------------------------------------------------------
// End to end: tenant counters ride the runtime's Prometheus export
// ---------------------------------------------------------------------------

TEST(QosRuntimeTest, TenantCountersAppearInPrometheusExport) {
  runtime::RuntimeOptions opts;
  opts.num_threads = 2;
  opts.tenants = {{.name = "acme", .cache_weight = 2.0}};
  runtime::WrapperRuntime rt(opts);
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
  )");
  ASSERT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item"};
  auto handle = rt.Register(w, "class");
  ASSERT_TRUE(handle.ok());

  const std::string page = CatalogPage(77);
  runtime::RequestOptions as_acme;
  as_acme.tenant = 1;  // first configured tenant
  auto result =
      rt.Submit({runtime::PageRef::View(page), *handle, as_acme}).get();
  ASSERT_TRUE(result.ok());

  const auto ts = rt.tenant_stats(1);
  EXPECT_EQ(ts.name, "acme");
  EXPECT_EQ(ts.requests, 1);
  EXPECT_EQ(ts.pages_wrapped, 1);
  EXPECT_EQ(ts.document_cache.misses, 1);

  const std::string prom = rt.ExportPrometheus();
  EXPECT_NE(prom.find("mdatalog_tenant_acme_requests_total 1"),
            std::string::npos);
  EXPECT_NE(prom.find("mdatalog_tenant_acme_pages_wrapped_total 1"),
            std::string::npos);
  EXPECT_NE(prom.find("mdatalog_tenant_acme_document_cache_bytes"),
            std::string::npos);
}

}  // namespace
