// Per-request deadlines and cooperative cancellation (util/deadline.h),
// threaded from WrapperRuntime through elog/eval, wrapper/wrapper, the
// semi-naive rounds of core/eval.cc, the grounded node sweep, and the Horn
// propagation loop of core/horn.cc. The contract under test: a bounded
// request unwinds with a *typed* kDeadlineExceeded / kCancelled status — it
// never hangs a worker, never returns a partial result as success, and never
// poisons shared state for later requests.

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/database.h"
#include "src/core/eval.h"
#include "src/core/grounder.h"
#include "src/core/horn.h"
#include "src/elog/ast.h"
#include "src/elog/eval.h"
#include "src/elog/to_datalog.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/runtime/runtime.h"
#include "src/tmnf/pipeline.h"
#include "src/tree/generator.h"
#include "src/tree/serialize.h"
#include "src/util/deadline.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;
using std::chrono::milliseconds;

util::Deadline ExpiredDeadline() { return util::Deadline::After(milliseconds(-1)); }

wrapper::Wrapper BoardWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    litem(X) <- anynode(P), subelem(P, "li", X).
    deepleaf(X) <- litem(X), leaf(X).
  )");
  EXPECT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"litem", "deepleaf"};
  return w;
}

/// The Corollary 6.4 pipeline of BoardWrapper: the TMNF program the grounded
/// and semi-naive engines run in the serving runtime.
core::Program BoardTmnf() {
  auto datalog = elog::ElogToDatalog(BoardWrapper().program);
  EXPECT_TRUE(datalog.ok());
  auto tmnf = tmnf::ToTmnf(*datalog);
  EXPECT_TRUE(tmnf.ok());
  return *tmnf;
}

// ---------------------------------------------------------------------------
// util/deadline.h primitives
// ---------------------------------------------------------------------------

TEST(DeadlineTest, DefaultIsInfinite) {
  util::Deadline d;
  EXPECT_FALSE(d.has_deadline());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(util::Deadline::Infinite().expired());
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  EXPECT_TRUE(ExpiredDeadline().expired());
  EXPECT_FALSE(util::Deadline::After(std::chrono::hours(1)).expired());
}

TEST(CancelTokenTest, CancelIsSticky) {
  util::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(EvalControlTest, ChecksReportTypedStatuses) {
  EXPECT_TRUE(util::EvalControl().Check().ok());
  EXPECT_TRUE(util::EvalControl().unbounded());

  util::EvalControl expired(ExpiredDeadline(), nullptr);
  EXPECT_FALSE(expired.unbounded());
  EXPECT_EQ(expired.Check().code(), util::StatusCode::kDeadlineExceeded);

  util::CancelToken token;
  util::EvalControl cancellable(util::Deadline::Infinite(), &token);
  EXPECT_TRUE(cancellable.Check().ok());
  token.Cancel();
  // Cancellation wins over the (infinite) deadline.
  EXPECT_EQ(cancellable.Check().code(), util::StatusCode::kCancelled);
}

TEST(EvalTickerTest, NullAndUnboundedControlsNeverFail) {
  util::EvalTicker null_ticker(nullptr);
  EXPECT_FALSE(null_ticker.active());
  util::EvalControl unbounded;
  util::EvalTicker unbounded_ticker(&unbounded);
  EXPECT_FALSE(unbounded_ticker.active());
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(null_ticker.Tick().ok());
    EXPECT_TRUE(unbounded_ticker.Tick().ok());
  }
}

TEST(EvalTickerTest, StridedTickFiresWithinOneStride) {
  util::EvalControl expired(ExpiredDeadline(), nullptr);
  util::EvalTicker ticker(&expired, /*stride=*/64);
  EXPECT_TRUE(ticker.active());
  int ok_ticks = 0;
  util::Status status = util::Status::OK();
  while (status.ok() && ok_ticks <= 64) {
    status = ticker.Tick();
    if (status.ok()) ++ok_ticks;
  }
  EXPECT_EQ(status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_LT(ok_ticks, 64);
}

// ---------------------------------------------------------------------------
// Engine-level checks: every fixpoint loop unwinds with the typed status.
// ---------------------------------------------------------------------------

TEST(EngineDeadlineTest, SemiNaiveRoundsHonorTheDeadline) {
  core::Program tmnf = BoardTmnf();
  util::Rng rng(7);
  tree::Tree t = tree::RandomTree(rng, 200, {"ul", "li", "a", "b"});
  core::TreeDatabase db(t);
  util::EvalControl expired(ExpiredDeadline(), nullptr);
  core::EvalOptions options;
  options.control = &expired;
  auto result = core::EvaluateSemiNaive(tmnf, db, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
}

TEST(EngineDeadlineTest, NaiveEngineHonorsCancellation) {
  core::Program tmnf = BoardTmnf();
  util::Rng rng(8);
  tree::Tree t = tree::RandomTree(rng, 100, {"ul", "li"});
  core::TreeDatabase db(t);
  util::CancelToken token;
  token.Cancel();
  util::EvalControl control(util::Deadline::Infinite(), &token);
  core::EvalOptions options;
  options.control = &control;
  auto result = core::EvaluateNaive(tmnf, db, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
}

TEST(EngineDeadlineTest, GroundedReplayHonorsTheControl) {
  core::Program tmnf = BoardTmnf();
  auto plan = core::GroundPlan::Compile(tmnf);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  util::Rng rng(9);
  tree::Tree t = tree::RandomTree(rng, 500, {"ul", "li", "a"});

  util::EvalControl expired(ExpiredDeadline(), nullptr);
  core::GroundArena arena;
  auto result =
      core::EvaluateGrounded(*plan, t, &arena, /*stats=*/nullptr, &expired);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);

  // The same arena still produces correct results afterwards — an aborted
  // replay leaves no residue (Clear() on entry).
  auto ok_result = core::EvaluateGrounded(*plan, t, &arena);
  ASSERT_TRUE(ok_result.ok());
  auto fresh = core::EvaluateGrounded(tmnf, t);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(ok_result->num_derived(), fresh->num_derived());
}

TEST(EngineDeadlineTest, HornPropagationHonorsTheDeadline) {
  // An implication chain longer than the ticker stride, so the propagation
  // queue itself (not the setup) hits the poll.
  core::FlatHornInstance instance;
  const int32_t n = 3 * util::EvalTicker::kDefaultStride;
  instance.num_atoms = n;
  instance.Commit(0);  // fact: atom 0
  for (int32_t a = 1; a < n; ++a) {
    instance.body_lits.push_back(a - 1);
    instance.Commit(a);
  }
  core::HornSolveScratch scratch;
  // Unbounded: the full chain derives.
  ASSERT_TRUE(core::SolveHornBounded(instance, &scratch, nullptr).ok());
  EXPECT_TRUE(scratch.value[n - 1]);

  util::EvalControl expired(ExpiredDeadline(), nullptr);
  util::Status status = core::SolveHornBounded(instance, &scratch, &expired);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kDeadlineExceeded);
}

TEST(EngineDeadlineTest, NativeElogHonorsTheControl) {
  wrapper::Wrapper w = BoardWrapper();
  util::Rng rng(11);
  std::string page = html::NestedBoardPage(rng, 4, 3);
  auto doc = html::ParseHtml(page);
  ASSERT_TRUE(doc.ok());

  util::EvalControl expired(ExpiredDeadline(), nullptr);
  auto result = elog::EvaluateElog(w.program, doc->tree(),
                                   elog::kDefaultMaxDerivations, &expired);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);

  // And through the wrapper layer.
  auto wrapped = wrapper::WrapTree(w, doc->tree(), &expired);
  ASSERT_FALSE(wrapped.ok());
  EXPECT_EQ(wrapped.status().code(), util::StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Runtime-level: the adversarial page and the serving counters.
// ---------------------------------------------------------------------------

TEST(RuntimeDeadlineTest, AdversarialPageReturnsDeadlineExceededUnder1ms) {
  // A deep synthetic board (~88k nodes): hashing + parsing + grounding far
  // exceeds 1ms on any hardware this runs on, and every stage past the entry
  // check polls cooperatively — the request must come back as a typed
  // kDeadlineExceeded, not hang the worker.
  util::Rng rng(13);
  const std::string adversarial = html::NestedBoardPage(rng, 10, 3);

  runtime::WrapperRuntime rt;
  auto handle = rt.Register(BoardWrapper());
  ASSERT_TRUE(handle.ok());

  runtime::RequestOptions request;
  request.deadline = util::Deadline::After(milliseconds(1));
  auto got = rt.Wrap(*handle, adversarial, request);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(rt.stats().deadline_exceeded, 1);

  // A deadline failure is not memoized and does not poison the caches: the
  // same page without a deadline evaluates fully and correctly.
  auto unbounded = rt.Wrap(*handle, adversarial);
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();
  auto doc = html::ParseHtml(adversarial);
  ASSERT_TRUE(doc.ok());
  auto reference = wrapper::WrapTree(BoardWrapper(), doc->tree());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(*unbounded, tree::ToXml(*reference));
}

TEST(RuntimeDeadlineTest, ExpiredRequestFastFailsBeforeAnyWork) {
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(BoardWrapper());
  ASSERT_TRUE(handle.ok());
  runtime::RequestOptions request;
  request.deadline = ExpiredDeadline();
  auto got = rt.Wrap(*handle, "<ul><li>x</li></ul>", request);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kDeadlineExceeded);
  // Fast-fail means no parse, no cache traffic.
  EXPECT_EQ(rt.stats().document_cache.misses, 0);
  EXPECT_EQ(rt.stats().pages_wrapped, 0);
}

TEST(RuntimeDeadlineTest, MixedBoundedAndUnboundedTrafficAt8Threads) {
  // 8 workers, half the requests carrying an already-expired deadline: the
  // bounded half must all fail typed, the unbounded half must all succeed
  // byte-identically — bounded failures never bleed into neighbors.
  runtime::RuntimeOptions opts;
  opts.num_threads = 8;
  opts.result_memo.byte_budget = 0;  // every request actually evaluates
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(BoardWrapper());
  ASSERT_TRUE(handle.ok());

  std::vector<std::string> pages;
  std::vector<std::string> expected;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    util::Rng rng(seed);
    pages.push_back(html::NestedBoardPage(rng, 3, 3));
    auto doc = html::ParseHtml(pages.back());
    ASSERT_TRUE(doc.ok());
    auto ref = wrapper::WrapTree(BoardWrapper(), doc->tree());
    ASSERT_TRUE(ref.ok());
    expected.push_back(tree::ToXml(*ref));
  }

  runtime::RequestOptions expired_request;
  expired_request.deadline = ExpiredDeadline();
  std::vector<std::future<util::Result<std::string>>> bounded;
  std::vector<std::future<util::Result<std::string>>> unbounded;
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < pages.size(); ++i) {
      bounded.push_back(rt.Submit(
          {runtime::PageRef::View(pages[i]), *handle, expired_request}));
      unbounded.push_back(
          rt.Submit({runtime::PageRef::View(pages[i]), *handle, {}}));
    }
  }
  for (auto& f : bounded) {
    auto got = f.get();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), util::StatusCode::kDeadlineExceeded);
  }
  size_t i = 0;
  for (auto& f : unbounded) {
    auto got = f.get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, expected[i % pages.size()]);
    ++i;
  }
  EXPECT_EQ(rt.stats().deadline_exceeded,
            static_cast<int64_t>(bounded.size()));
}

}  // namespace
