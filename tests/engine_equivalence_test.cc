// Cross-engine equivalence property test: on random monadic programs over
// random trees, the naive, semi-naive and grounded (Theorem 4.2) engines —
// and the pre-rewrite reference engines kept in reference_eval.h — must
// compute identical fixpoints, and their derivation counters must agree
// (num_derived is the size of the IDB part of T^ω_P regardless of engine).

#include <gtest/gtest.h>

#include "src/core/ast.h"
#include "src/core/eval.h"
#include "src/core/grounder.h"
#include "src/core/parser.h"
#include "src/core/program_generator.h"
#include "src/core/reference_eval.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

namespace {

using namespace mdatalog;

TEST(EngineEquivalenceTest, AllEnginesAgreeOnRandomPrograms) {
  util::Rng rng(20260729);
  int grounded_runs = 0;
  for (int trial = 0; trial < 50; ++trial) {
    core::ProgramGenOptions opts;
    opts.num_rules = 1 + static_cast<int32_t>(rng.Below(12));
    opts.num_idb_preds = 1 + static_cast<int32_t>(rng.Below(6));
    opts.max_body_atoms = 1 + static_cast<int32_t>(rng.Below(6));
    opts.allow_extended = rng.Chance(1, 2);
    core::Program p = core::RandomMonadicProgram(rng, opts);
    tree::Tree t = tree::RandomTree(
        rng, 1 + static_cast<int32_t>(rng.Below(60)), {"a", "b"});
    core::TreeDatabase db(t);

    auto naive = core::EvaluateNaive(p, db);
    auto semi = core::EvaluateSemiNaive(p, db);
    auto ref_naive = core::EvaluateNaiveReference(p, db);
    auto ref_semi = core::EvaluateSemiNaiveReference(p, db);
    ASSERT_TRUE(naive.ok()) << core::ToString(p);
    ASSERT_TRUE(semi.ok()) << core::ToString(p);
    ASSERT_TRUE(ref_naive.ok()) << core::ToString(p);
    ASSERT_TRUE(ref_semi.ok()) << core::ToString(p);

    EXPECT_EQ(naive->Query(), semi->Query()) << core::ToString(p);
    EXPECT_EQ(naive->Query(), ref_naive->Query()) << core::ToString(p);
    EXPECT_EQ(naive->Query(), ref_semi->Query()) << core::ToString(p);

    // The whole IDB must match, not just the query predicate. The generator
    // only emits unary IDB, but compare every arity's accessors anyway so a
    // future generator extension is covered automatically.
    for (core::PredId q = 0; q < p.preds().size(); ++q) {
      EXPECT_EQ(naive->NullaryTrue(q), semi->NullaryTrue(q));
      EXPECT_EQ(naive->NullaryTrue(q), ref_naive->NullaryTrue(q));
      EXPECT_EQ(naive->Binary(q), semi->Binary(q));
      EXPECT_EQ(naive->Binary(q), ref_naive->Binary(q));
      if (p.preds().Arity(q) != 1) continue;
      EXPECT_EQ(naive->Unary(q), semi->Unary(q))
          << p.preds().Name(q) << "\n" << core::ToString(p);
      EXPECT_EQ(naive->Unary(q), ref_naive->Unary(q))
          << p.preds().Name(q) << "\n" << core::ToString(p);
    }

    // num_derived counts the unique atoms of the fixpoint's IDB part.
    EXPECT_EQ(naive->num_derived(), semi->num_derived()) << core::ToString(p);
    EXPECT_EQ(naive->num_derived(), ref_naive->num_derived())
        << core::ToString(p);
    EXPECT_EQ(naive->num_derived(), ref_semi->num_derived())
        << core::ToString(p);

    if (core::GroundableOverTree(p)) {
      ++grounded_runs;
      auto grounded = core::EvaluateGrounded(p, t);
      ASSERT_TRUE(grounded.ok()) << core::ToString(p);
      EXPECT_EQ(naive->Query(), grounded->Query()) << core::ToString(p);
      for (core::PredId q = 0; q < p.preds().size(); ++q) {
        if (p.preds().Arity(q) != 1) continue;
        EXPECT_EQ(naive->Unary(q), grounded->Unary(q))
            << p.preds().Name(q) << "\n" << core::ToString(p);
      }
      EXPECT_EQ(naive->num_derived(), grounded->num_derived())
          << core::ToString(p);
    }
  }
  // The sweep must actually exercise the Theorem 4.2 path.
  EXPECT_GT(grounded_runs, 5);
}

// The random generator emits only unary IDB, so the dense nullary/binary
// stores and their deltas get a directed cross-engine check here: binary
// transitive closure plus a nullary bridge, naive vs semi-naive vs the
// reference oracle.
TEST(EngineEquivalenceTest, BinaryAndNullaryIdbAgreeAcrossEngines) {
  auto p = core::ParseProgram(
      "tc(X, Y) :- nextsibling(X, Y).\n"
      "tc(X, Z) :- tc(X, Y), nextsibling(Y, Z).\n"
      "found :- tc(X, Y), label_b(Y).\n"
      "hit(X) :- leaf(X), found.\n");
  ASSERT_TRUE(p.ok());
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    tree::Tree t = tree::RandomTree(
        rng, 1 + static_cast<int32_t>(rng.Below(40)), {"a", "b"});
    core::TreeDatabase db(t);
    auto naive = core::EvaluateNaive(*p, db);
    auto semi = core::EvaluateSemiNaive(*p, db);
    auto ref = core::EvaluateSemiNaiveReference(*p, db);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(semi.ok());
    ASSERT_TRUE(ref.ok());
    const core::PredId tc = p->preds().Find("tc");
    const core::PredId found = p->preds().Find("found");
    const core::PredId hit = p->preds().Find("hit");
    EXPECT_EQ(naive->Binary(tc), semi->Binary(tc));
    EXPECT_EQ(naive->Binary(tc), ref->Binary(tc));
    EXPECT_EQ(naive->NullaryTrue(found), semi->NullaryTrue(found));
    EXPECT_EQ(naive->NullaryTrue(found), ref->NullaryTrue(found));
    EXPECT_EQ(naive->Unary(hit), semi->Unary(hit));
    EXPECT_EQ(naive->Unary(hit), ref->Unary(hit));
    EXPECT_EQ(naive->num_derived(), semi->num_derived());
    EXPECT_EQ(naive->num_derived(), ref->num_derived());
  }
}

// Heads with out-of-domain constants are not derivable — and every engine,
// including the reference oracle, must agree (eval.h contract).
TEST(EngineEquivalenceTest, OutOfDomainHeadConstantsAreNotDerivable) {
  auto p = core::ParseProgramWithQuery("p(7) :- root(X).", "p");
  ASSERT_TRUE(p.ok());
  tree::Tree t = tree::ChainTree(3, "a");
  core::TreeDatabase db(t);
  auto naive = core::EvaluateNaive(*p, db);
  auto semi = core::EvaluateSemiNaive(*p, db);
  auto ref = core::EvaluateSemiNaiveReference(*p, db);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(semi.ok());
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(naive->Query().empty());
  EXPECT_TRUE(semi->Query().empty());
  EXPECT_TRUE(ref->Query().empty());
  EXPECT_EQ(naive->num_derived(), 0);
  EXPECT_EQ(ref->num_derived(), 0);
}

}  // namespace
