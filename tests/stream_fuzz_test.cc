// Deterministic fuzzing of the streaming front (runs under ASan in the
// sanitizer presets and under TSan via the `tsan` label): seeded byte-level
// mutations of real pages, fed chunk-wise through StreamSession. The
// contract on arbitrary garbage is exact: never crash, fail only with typed
// statuses, and — success or failure — agree with batch Wrap on the same
// bytes.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/elog/ast.h"
#include "src/html/synthetic.h"
#include "src/runtime/runtime.h"
#include "src/stream/stream_session.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

wrapper::Wrapper FuzzWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    adiv(X) <- anynode(P), subelem(P, "div", X).
    aleaf(X) <- anynode(P), subelem(P, "_", X), leaf(X).
  )");
  EXPECT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"adiv", "aleaf"};
  return w;
}

/// Small, structure-rich bases; every mutant stays ≤ ~2KB so the whole corpus
/// is cheap even single-threaded under sanitizers.
std::vector<std::string> BasePages() {
  std::vector<std::string> pages = {
      "<div class=\"a\"><ul><li>x<li>y &amp; z</ul>"
      "<!-- c --><script>a<b</script><p>tail</p></div>",
      "lead<div><div id='q'>deep</div></div><br>trail",
      "<table><tr><td>1</td><td>2<tr><td>3</table>",
  };
  util::Rng rng(99);
  pages.push_back(html::NestedBoardPage(rng, 2, 3));
  return pages;
}

/// One seeded mutation pass: byte flips, insertions of markup-significant
/// bytes, duplications and truncations.
std::string Mutate(const std::string& base, util::Rng& rng) {
  static const std::string kMarkup = "<>&\"'=/!-;# \tli";
  std::string s = base;
  const int32_t edits = 1 + static_cast<int32_t>(rng.Below(6));
  for (int32_t e = 0; e < edits && !s.empty(); ++e) {
    const size_t pos = rng.Below(s.size());
    switch (rng.Below(4)) {
      case 0:  // flip to a markup-significant byte
        s[pos] = kMarkup[rng.Below(kMarkup.size())];
        break;
      case 1:  // insert one
        s.insert(s.begin() + pos, kMarkup[rng.Below(kMarkup.size())]);
        break;
      case 2:  // duplicate a small span
        s.insert(pos, s.substr(pos, 1 + rng.Below(8)));
        break;
      case 3:  // truncate the tail (mid-construct EOF)
        if (rng.Chance(3, 10)) s.resize(pos);
        break;
    }
  }
  return s;
}

std::vector<std::string> ChunkUp(const std::string& page, util::Rng& rng) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < page.size()) {
    const size_t n = 1 + rng.Below(13);
    out.push_back(page.substr(i, n));
    i += n;
  }
  return out;
}

TEST(StreamFuzzTest, MutatedPagesNeverCrashAndAlwaysAgreeWithBatch) {
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(FuzzWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  const std::vector<std::string> bases = BasePages();
  util::Rng rng(20260808);
  int32_t checked = 0;
  for (int32_t round = 0; round < 60; ++round) {
    const std::string mutant = Mutate(bases[round % bases.size()], rng);
    const std::string context =
        "round " + std::to_string(round) + " input: " + mutant;

    auto batch = rt.Wrap(*handle, mutant);

    size_t emitted = 0;
    stream::StreamOptions options;
    options.on_result = [&emitted](const stream::StreamResult&) { ++emitted; };
    auto session = rt.SubmitStream({.wrapper = *handle}, std::move(options));
    ASSERT_TRUE(session.ok()) << context;
    util::Status feed_status;
    for (const std::string& chunk : ChunkUp(mutant, rng)) {
      feed_status = (*session)->Feed(chunk);
      if (!feed_status.ok()) break;
    }
    // Feeding arbitrary bytes never fails without a deadline/cancel bound:
    // the tokenizer is total on malformed markup.
    EXPECT_TRUE(feed_status.ok()) << context;

    auto streamed = (*session)->Finish();
    ASSERT_EQ(streamed.ok(), batch.ok()) << context;
    if (batch.ok()) {
      EXPECT_EQ(*streamed, *batch) << context;
      ++checked;
    } else {
      // Same typed failure (kInvalidArgument for content-free pages), never
      // a crash or an untyped state.
      EXPECT_EQ(streamed.status().code(), batch.status().code()) << context;
      EXPECT_EQ(emitted, 0u) << context;
    }
  }
  // The corpus is useful only if most mutants still wrap successfully.
  EXPECT_GT(checked, 30);
}

TEST(StreamFuzzTest, TruncationAtEveryByteOfASmallPageAgreesWithBatch) {
  // Exhaustive prefix truncation: EOF lands inside every construct the page
  // has (tag name, attribute, quoted value, entity, comment, script body).
  const std::string page =
      "<!DOCTYPE html><div class=\"a&amp;b\"><!-- x --><script>1<2</script>"
      "<p>t &lt; u<li>v</div>";
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(FuzzWrapper(), "class");
  ASSERT_TRUE(handle.ok());
  for (size_t cut = 0; cut <= page.size(); ++cut) {
    const std::string prefix = page.substr(0, cut);
    auto batch = rt.Wrap(*handle, prefix);
    auto session = rt.SubmitStream({.wrapper = *handle}, {});
    ASSERT_TRUE(session.ok());
    // Two-chunk split in the middle of the prefix, for variety.
    if (cut > 1) {
      ASSERT_TRUE((*session)->Feed(prefix.substr(0, cut / 2)).ok());
      ASSERT_TRUE((*session)->Feed(prefix.substr(cut / 2)).ok());
    } else if (cut == 1) {
      ASSERT_TRUE((*session)->Feed(prefix).ok());
    }
    auto streamed = (*session)->Finish();
    ASSERT_EQ(streamed.ok(), batch.ok()) << "cut at " << cut;
    if (batch.ok()) {
      EXPECT_EQ(*streamed, *batch) << "cut at " << cut;
    } else {
      EXPECT_EQ(streamed.status().code(), batch.status().code())
          << "cut at " << cut;
    }
  }
}

}  // namespace
