#include <gtest/gtest.h>

#include "src/util/interner.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace mdatalog::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(InternerTest, AssignsDenseIds) {
  Interner in;
  EXPECT_EQ(in.Intern("a"), 0);
  EXPECT_EQ(in.Intern("b"), 1);
  EXPECT_EQ(in.Intern("a"), 0);
  EXPECT_EQ(in.size(), 2);
  EXPECT_EQ(in.Name(0), "a");
  EXPECT_EQ(in.Name(1), "b");
}

TEST(InternerTest, FindWithoutInterning) {
  Interner in;
  in.Intern("x");
  EXPECT_EQ(in.Find("x"), 0);
  EXPECT_EQ(in.Find("y"), kInvalidSymbol);
  EXPECT_EQ(in.size(), 1);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Below(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace mdatalog::util
