#include <gtest/gtest.h>

#include "src/core/grounder.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"
#include "src/xpath/xpath.h"

namespace mdatalog::xpath {
namespace {

using tree::NodeId;
using tree::Tree;
using tree::TreeBuilder;

Path MustParse(const std::string& text) {
  auto p = ParseXPath(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << " in: " << text;
  return std::move(*p);
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

TEST(XPathParseTest, ShorthandAndAxes) {
  Path p = MustParse("/html/body//tr[td]/td");
  EXPECT_TRUE(p.absolute);
  ASSERT_EQ(p.steps.size(), 4u);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[0].label, "html");
  EXPECT_EQ(p.steps[2].axis, Axis::kDescendant);  // '//' shorthand
  EXPECT_EQ(p.steps[2].label, "tr");
  EXPECT_EQ(p.steps[2].predicates.size(), 1u);
}

TEST(XPathParseTest, ExplicitAxes) {
  Path p = MustParse("//li[following-sibling::li]/ancestor::ul");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendant);  // leading //
  EXPECT_EQ(p.steps[1].axis, Axis::kAncestor);
  const ExprP& pred = p.steps[0].predicates[0];
  EXPECT_EQ(pred->kind, Expr::Kind::kPath);
  EXPECT_EQ(pred->path.steps[0].axis, Axis::kFollowingSibling);
}

TEST(XPathParseTest, BooleanPredicates) {
  Path p = MustParse("//tr[td and not(th or self::x)]");
  const ExprP& pred = p.steps[0].predicates[0];
  EXPECT_EQ(pred->kind, Expr::Kind::kAnd);
  EXPECT_EQ(pred->children[1]->kind, Expr::Kind::kNot);
}

TEST(XPathParseTest, WildcardsAndRelative) {
  Path p = MustParse("a/*/b");
  EXPECT_FALSE(p.absolute);
  EXPECT_EQ(p.steps[1].label, "");
}

TEST(XPathParseTest, Errors) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("/a[").ok());
  EXPECT_FALSE(ParseXPath("/a]").ok());
  EXPECT_FALSE(ParseXPath("/unknown-axis::a").ok());
  EXPECT_FALSE(ParseXPath("/a//").ok());
}

TEST(XPathParseTest, RoundTrip) {
  for (const char* text :
       {"/html/body//tr[td]/td", "//li[following-sibling::li]",
        "a/*/b[not(c)]", "/x[descendant::y and z]"}) {
    Path p1 = MustParse(text);
    Path p2 = MustParse(ToString(p1));
    EXPECT_EQ(ToString(p1), ToString(p2));
  }
}

// ---------------------------------------------------------------------------
// Reference semantics
// ---------------------------------------------------------------------------

Tree DocTree() {
  // html(body(ul(li, li(b), li), div(b)))     ids: 0..7
  TreeBuilder b;
  NodeId html = b.Root("html");
  NodeId body = b.Child(html, "body");
  NodeId ul = b.Child(body, "ul");
  b.Child(ul, "li");                   // 3
  NodeId li2 = b.Child(ul, "li");      // 4
  b.Child(li2, "b");                   // 5
  b.Child(ul, "li");                   // 6
  NodeId div = b.Child(body, "div");   // 7
  b.Child(div, "b");                   // 8
  return b.Build();
}

std::vector<NodeId> Ref(const Tree& t, const std::string& q) {
  auto r = EvalXPathReference(t, MustParse(q));
  EXPECT_TRUE(r.ok()) << q;
  return *r;
}

TEST(XPathReferenceTest, BasicSelection) {
  Tree t = DocTree();
  EXPECT_EQ(Ref(t, "/html/body/ul/li"), (std::vector<NodeId>{3, 4, 6}));
  EXPECT_EQ(Ref(t, "//b"), (std::vector<NodeId>{5, 8}));
  EXPECT_EQ(Ref(t, "//li[b]"), (std::vector<NodeId>{4}));
  EXPECT_EQ(Ref(t, "//li[not(b)]"), (std::vector<NodeId>{3, 6}));
  EXPECT_EQ(Ref(t, "//b/parent::li"), (std::vector<NodeId>{4}));
  EXPECT_EQ(Ref(t, "//b/ancestor::body"), (std::vector<NodeId>{1}));
  EXPECT_EQ(Ref(t, "//li[following-sibling::li]"),
            (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(Ref(t, "//li[preceding-sibling::li and b]"),
            (std::vector<NodeId>{4}));
}

TEST(XPathReferenceTest, RelativePathsStartAnywhere) {
  Tree t = DocTree();
  EXPECT_EQ(Ref(t, "b"), (std::vector<NodeId>{5, 8}));  // any b-child
  EXPECT_EQ(Ref(t, "self::li"), (std::vector<NodeId>{3, 4, 6}));
}

TEST(XPathReferenceTest, AbsolutePredicate) {
  Tree t = DocTree();
  // Every li qualifies because the document has a div somewhere.
  EXPECT_EQ(Ref(t, "//li[/html/body/div]"), (std::vector<NodeId>{3, 4, 6}));
  EXPECT_EQ(Ref(t, "//li[/html/xyz]"), (std::vector<NodeId>{}));
}

// ---------------------------------------------------------------------------
// Corollary-style claim (Section 7): XPath → monadic datalog, linear engine
// ---------------------------------------------------------------------------

void ExpectDatalogMatchesReference(const std::string& query, const Tree& t) {
  Path path = MustParse(query);
  auto reference = EvalXPathReference(t, path);
  ASSERT_TRUE(reference.ok());
  auto program = XPathToDatalog(path);
  ASSERT_TRUE(program.ok()) << program.status().ToString() << " for "
                            << query;
  auto eval = core::EvaluateOnTree(*program, t);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  EXPECT_EQ(eval->Query(), *reference)
      << query << " on " << tree::ToDebugString(t);
}

TEST(XPathToDatalogTest, PositiveQueriesMatchReference) {
  Tree t = DocTree();
  for (const char* q :
       {"/html/body/ul/li", "//b", "//li[b]", "//b/parent::li",
        "//li[following-sibling::li]", "//b/ancestor::body",
        "/html/body/*", "//li[preceding-sibling::li and b]",
        "self::li", "//ul/li[b]/b", "//li[/html/body/div]",
        "//li[descendant-or-self::b]", "b"}) {
    ExpectDatalogMatchesReference(q, t);
  }
}

TEST(XPathToDatalogTest, PropertyOnRandomTrees) {
  util::Rng rng(20260610);
  const char* queries[] = {
      "//a", "//a[b]", "//b[following-sibling::a]", "//a/parent::b",
      "//a[ancestor::b]", "/r//b[a or c]", "//c[preceding-sibling::a and b]",
  };
  for (int trial = 0; trial < 12; ++trial) {
    TreeBuilder b;
    b.Root("r");
    Tree inner = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(30)),
                                  {"a", "b", "c"});
    std::function<void(NodeId, NodeId)> graft = [&](NodeId s, NodeId dst) {
      NodeId built = b.Child(dst, inner.label_name(s));
      for (NodeId c = inner.first_child(s); c != tree::kNoNode;
           c = inner.next_sibling(c)) {
        graft(c, built);
      }
    };
    graft(inner.root(), 0);
    Tree t = b.Build();
    for (const char* q : queries) ExpectDatalogMatchesReference(q, t);
  }
}

TEST(XPathToDatalogTest, NegationIsRejectedButEvaluatorHandlesIt) {
  Tree t = DocTree();
  Path with_not = MustParse("//li[not(b)]");
  EXPECT_FALSE(XPathToDatalog(with_not).ok());
  // EvalXPath falls back to the (stratified) reference evaluation.
  auto r = EvalXPath(t, "//li[not(b)]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<NodeId>{3, 6}));
}

TEST(XPathToDatalogTest, CompiledProgramIsGroundable) {
  auto program = XPathToDatalog(MustParse("//li[b]/b"));
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(core::GroundableOverTree(*program));
}

TEST(XPathTest, OnSyntheticCatalog) {
  util::Rng rng(9);
  html::CatalogOptions opts;
  opts.num_items = 6;
  opts.with_ads = true;
  auto doc = html::ParseHtml(html::ProductCatalogPage(rng, opts));
  ASSERT_TRUE(doc.ok());
  Tree t = html::ProjectAttributeIntoLabels(*doc, "class");
  auto items = EvalXPath(t, "//tr@item");
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->size(), 6u);
  auto prices = EvalXPath(t, "//tr@item/td@price");
  ASSERT_TRUE(prices.ok());
  EXPECT_EQ(prices->size(), 6u);
  // Items that are not the last row of their table.
  auto not_last = EvalXPath(t, "//tr@item[following-sibling::tr@item]");
  ASSERT_TRUE(not_last.ok());
  EXPECT_EQ(not_last->size(), 5u);
}

}  // namespace
}  // namespace mdatalog::xpath
