#include <gtest/gtest.h>

#include "src/core/database.h"
#include "src/core/eval.h"
#include "src/core/examples.h"
#include "src/core/grounder.h"
#include "src/core/horn.h"
#include "src/core/parser.h"
#include "src/core/program_generator.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

namespace mdatalog::core {
namespace {

using tree::Tree;
using tree::TreeBuilder;

Tree SmallTree() {
  // a(b, c(d, e), f)  — ids 0..5
  TreeBuilder b;
  auto r = b.Root("a");
  b.Child(r, "b");
  auto c = b.Child(r, "c");
  b.Child(c, "d");
  b.Child(c, "e");
  b.Child(r, "f");
  return b.Build();
}

// ---------------------------------------------------------------------------
// TreeDatabase: the τ_ur relational view
// ---------------------------------------------------------------------------

TEST(TreeDatabaseTest, UnaryRelations) {
  Tree t = SmallTree();
  TreeDatabase db(t);
  EXPECT_EQ(db.Get("root", 1)->unary_tuples(), (std::vector<int32_t>{0}));
  EXPECT_EQ(db.Get("leaf", 1)->unary_tuples(),
            (std::vector<int32_t>{1, 3, 4, 5}));
  EXPECT_EQ(db.Get("lastsibling", 1)->unary_tuples(),
            (std::vector<int32_t>{4, 5}));
  EXPECT_EQ(db.Get("firstsibling", 1)->unary_tuples(),
            (std::vector<int32_t>{1, 3}));
  EXPECT_EQ(db.Get("label_c", 1)->unary_tuples(), (std::vector<int32_t>{2}));
  // Unknown label: empty but valid relation (Remark 2.2).
  EXPECT_EQ(db.Get("label_zzz", 1)->size(), 0);
}

TEST(TreeDatabaseTest, BinaryRelations) {
  Tree t = SmallTree();
  TreeDatabase db(t);
  using P = std::vector<std::pair<int32_t, int32_t>>;
  EXPECT_EQ(db.Get("firstchild", 2)->binary_tuples(),
            (P{{0, 1}, {2, 3}}));
  EXPECT_EQ(db.Get("nextsibling", 2)->binary_tuples(),
            (P{{1, 2}, {2, 5}, {3, 4}}));
  EXPECT_EQ(db.Get("child", 2)->binary_tuples(),
            (P{{0, 1}, {0, 2}, {0, 5}, {2, 3}, {2, 4}}));
  EXPECT_EQ(db.Get("lastchild", 2)->binary_tuples(), (P{{0, 5}, {2, 4}}));
  EXPECT_EQ(db.Get("child1", 2)->binary_tuples(), (P{{0, 1}, {2, 3}}));
  EXPECT_EQ(db.Get("child2", 2)->binary_tuples(), (P{{0, 2}, {2, 4}}));
  EXPECT_EQ(db.Get("child3", 2)->binary_tuples(), (P{{0, 5}}));
}

TEST(TreeDatabaseTest, NextSiblingTransitiveClosureIsReflexive) {
  Tree t = SmallTree();
  TreeDatabase db(t);
  const Relation* tc = db.Get("nextsibling_tc", 2);
  // Reflexive pairs for all 6 nodes + (1,2),(1,5),(2,5),(3,4).
  EXPECT_EQ(tc->size(), 6 + 4);
  EXPECT_TRUE(tc->ContainsBinary(0, 0));
  EXPECT_TRUE(tc->ContainsBinary(1, 5));
  EXPECT_FALSE(tc->ContainsBinary(5, 1));
}

TEST(TreeDatabaseTest, RejectsNonTreePredicates) {
  Tree t = SmallTree();
  TreeDatabase db(t);
  EXPECT_EQ(db.Get("edge", 2), nullptr);
  EXPECT_EQ(db.Get("root", 2), nullptr);
  EXPECT_EQ(db.Get("firstchild", 1), nullptr);
}

TEST(TreeDatabaseTest, IndexedAccessPaths) {
  Tree t = SmallTree();
  TreeDatabase db(t);
  const Relation* child = db.Get("child", 2);
  EXPECT_EQ(child->Forward(0), (std::vector<int32_t>{1, 2, 5}));
  EXPECT_EQ(child->Backward(4), (std::vector<int32_t>{2}));
  EXPECT_TRUE(child->ContainsBinary(0, 5));
  EXPECT_FALSE(child->ContainsBinary(0, 4));
}

TEST(ExplicitDatabaseTest, StoresArbitraryFacts) {
  ExplicitDatabase db(4);
  db.AddFact("p");
  db.AddFact("u", 2);
  db.AddFact("e", 0, 1);
  db.AddFact("e", 1, 2);
  EXPECT_TRUE(db.Get("p", 0)->nullary_true());
  EXPECT_TRUE(db.Get("u", 1)->ContainsUnary(2));
  EXPECT_EQ(db.Get("e", 2)->Forward(1), (std::vector<int32_t>{2}));
  EXPECT_EQ(db.Get("missing", 1), nullptr);
}

// ---------------------------------------------------------------------------
// LTUR Horn solver (Proposition 3.5)
// ---------------------------------------------------------------------------

TEST(HornTest, FactsAndChains) {
  HornInstance inst;
  inst.num_atoms = 4;
  inst.clauses = {{0, {}}, {1, {0}}, {2, {1}}, {3, {2}}};
  std::vector<bool> model = SolveHorn(inst);
  EXPECT_EQ(model, (std::vector<bool>{true, true, true, true}));
}

TEST(HornTest, CyclesAreNotSelfSupporting) {
  HornInstance inst;
  inst.num_atoms = 2;
  inst.clauses = {{0, {1}}, {1, {0}}};
  std::vector<bool> model = SolveHorn(inst);
  EXPECT_EQ(model, (std::vector<bool>{false, false}));
}

TEST(HornTest, ConjunctionNeedsAllBodyAtoms) {
  HornInstance inst;
  inst.num_atoms = 4;
  inst.clauses = {{0, {}}, {3, {0, 1}}, {1, {}}, {2, {0, 3}}};
  std::vector<bool> model = SolveHorn(inst);
  EXPECT_TRUE(model[3]);
  EXPECT_TRUE(model[2]);
}

TEST(HornTest, DuplicateBodyAtomsCountedPerOccurrence) {
  HornInstance inst;
  inst.num_atoms = 2;
  inst.clauses = {{0, {}}, {1, {0, 0}}};
  std::vector<bool> model = SolveHorn(inst);
  EXPECT_TRUE(model[1]);
}

TEST(HornTest, UnreachableStaysFalse) {
  HornInstance inst;
  inst.num_atoms = 3;
  inst.clauses = {{0, {}}, {1, {2}}};
  std::vector<bool> model = SolveHorn(inst);
  EXPECT_EQ(model, (std::vector<bool>{true, false, false}));
}

// ---------------------------------------------------------------------------
// Example 3.2: the paper's fixpoint trace, reproduced exactly
// ---------------------------------------------------------------------------

TEST(Example32Test, FixpointTraceMatchesPaper) {
  // Tree: root n1 with children n2, n3, n4 (paper ids) = our ids 0..3.
  Tree t = tree::PaperExample32Tree();
  Program p = EvenAProgram();
  TreeDatabase db(t);
  EvalOptions opts;
  opts.trace = true;
  auto result = EvaluateNaive(p, db, opts);
  ASSERT_TRUE(result.ok());

  auto pred = [&](const std::string& name) { return p.preds().Find(name); };
  auto atoms_of_stage = [&](size_t i) {
    std::vector<std::pair<std::string, int32_t>> out;
    for (const GroundAtom& g : result->stages()[i].new_atoms) {
      out.emplace_back(p.preds().Name(g.pred), g.args[0]);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  using A = std::vector<std::pair<std::string, int32_t>>;

  // T1 = {B0(n2), B0(n3), B0(n4)}
  ASSERT_EQ(result->stages().size(), 7u);
  EXPECT_EQ(atoms_of_stage(0), (A{{"b0", 1}, {"b0", 2}, {"b0", 3}}));
  // T2 adds C1 on the three leaves.
  EXPECT_EQ(atoms_of_stage(1), (A{{"c1", 1}, {"c1", 2}, {"c1", 3}}));
  // T3 = {R1(n4)}
  EXPECT_EQ(atoms_of_stage(2), (A{{"r1", 3}}));
  // T4 = {R0(n3)}
  EXPECT_EQ(atoms_of_stage(3), (A{{"r0", 2}}));
  // T5 = {R1(n2)}
  EXPECT_EQ(atoms_of_stage(4), (A{{"r1", 1}}));
  // T6 = {B1(n1)}
  EXPECT_EQ(atoms_of_stage(5), (A{{"b1", 0}}));
  // T7 = {C0(n1)}
  EXPECT_EQ(atoms_of_stage(6), (A{{"c0", 0}}));

  // Query C0 evaluates to {n1}.
  EXPECT_EQ(result->Query(), (std::vector<int32_t>{0}));
  // 7 productive iterations + 1 fixpoint check.
  EXPECT_EQ(result->num_iterations(), 8);
  (void)pred;
}

TEST(Example32Test, AllEnginesAgree) {
  Tree t = tree::PaperExample32Tree();
  Program p = EvenAProgram();
  auto naive = EvaluateOnTree(p, t, Engine::kNaive);
  auto semi = EvaluateOnTree(p, t, Engine::kSemiNaive);
  auto grounded = EvaluateOnTree(p, t, Engine::kGrounded);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(semi.ok());
  ASSERT_TRUE(grounded.ok());
  EXPECT_EQ(naive->Query(), (std::vector<int32_t>{0}));
  EXPECT_EQ(semi->Query(), (std::vector<int32_t>{0}));
  EXPECT_EQ(grounded->Query(), (std::vector<int32_t>{0}));
}

TEST(Example32Test, EvenAOnVariousTrees) {
  Program p = EvenAProgram();
  // Single node labeled a: subtree has 1 'a' -> odd -> not selected.
  {
    TreeBuilder b;
    b.Root("a");
    auto r = EvaluateOnTree(p, b.Build());
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->Query().empty());
  }
  // Chain of 4 a's: node at depth d roots a subtree with 4-d a's.
  {
    Tree t = tree::ChainTree(4, "a");
    auto r = EvaluateOnTree(p, t);
    ASSERT_TRUE(r.ok());
    // Subtree sizes: 4,3,2,1 -> even at ids 0 and 2.
    EXPECT_EQ(r->Query(), (std::vector<int32_t>{0, 2}));
  }
}

TEST(Example32Test, EvenACountsOnlyLabelA) {
  Program p = EvenAProgram({"b"});
  // Tree a(b, a): root subtree has two a's -> selected; b-leaf has zero
  // a's -> even -> selected; a-leaf has one -> not.
  Tree t = tree::ChildrenWord("a", {"b", "a"});
  auto r = EvaluateOnTree(p, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// Reference query programs
// ---------------------------------------------------------------------------

TEST(ExampleProgramsTest, HasAncestor) {
  // a(b, c(d, e), f): descendants of label c = {d, e}.
  Tree t = SmallTree();
  auto r = EvaluateOnTree(HasAncestorProgram("c"), t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{3, 4}));
  auto ra = EvaluateOnTree(HasAncestorProgram("a"), t);
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(ra->Query(), (std::vector<int32_t>{1, 2, 3, 4, 5}));
}

TEST(ExampleProgramsTest, EvenDepthLeaves) {
  Tree t = SmallTree();  // leaves: 1 (d1), 3 (d2), 4 (d2), 5 (d1)
  auto r = EvaluateOnTree(EvenDepthLeafProgram(), t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{3, 4}));
}

TEST(ExampleProgramsTest, ChainProgramDerivesRootOnly) {
  Tree t = SmallTree();
  Program p = ChainProgram(10);
  auto r = EvaluateOnTree(p, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{0}));
}

TEST(ExampleProgramsTest, DomProgramSelectsAllNodes) {
  Tree t = SmallTree();
  auto r = EvaluateOnTree(DomProgram(), t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{0, 1, 2, 3, 4, 5}));
}

// ---------------------------------------------------------------------------
// Engine cross-validation (naive == semi-naive == grounded)
// ---------------------------------------------------------------------------

void ExpectSameResults(const Program& p, const Tree& t) {
  TreeDatabase db(t);
  auto naive = EvaluateNaive(p, db);
  auto semi = EvaluateSemiNaive(p, db);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(semi.ok());
  std::vector<bool> intensional = p.IntensionalMask();
  for (PredId q = 0; q < p.preds().size(); ++q) {
    if (!intensional[q]) continue;
    if (p.preds().Arity(q) == 1) {
      EXPECT_EQ(naive->Unary(q), semi->Unary(q))
          << "pred " << p.preds().Name(q) << "\n" << ToString(p);
    } else if (p.preds().Arity(q) == 0) {
      EXPECT_EQ(naive->NullaryTrue(q), semi->NullaryTrue(q));
    }
  }
  if (GroundableOverTree(p)) {
    auto grounded = EvaluateGrounded(p, t);
    ASSERT_TRUE(grounded.ok());
    for (PredId q = 0; q < p.preds().size(); ++q) {
      if (!intensional[q]) continue;
      if (p.preds().Arity(q) == 1) {
        EXPECT_EQ(naive->Unary(q), grounded->Unary(q))
            << "pred " << p.preds().Name(q) << "\n" << ToString(p);
      } else if (p.preds().Arity(q) == 0) {
        EXPECT_EQ(naive->NullaryTrue(q), grounded->NullaryTrue(q));
      }
    }
  }
}

TEST(EngineEquivalenceTest, RandomProgramsOnRandomTrees) {
  util::Rng rng(20240610);
  for (int trial = 0; trial < 40; ++trial) {
    ProgramGenOptions opts;
    opts.num_rules = 3 + static_cast<int32_t>(rng.Below(8));
    opts.num_idb_preds = 2 + static_cast<int32_t>(rng.Below(4));
    Program p = RandomMonadicProgram(rng, opts);
    ASSERT_TRUE(GroundableOverTree(p)) << ToString(p);
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(60)),
                              {"a", "b", "c"});
    ExpectSameResults(p, t);
  }
}

TEST(EngineEquivalenceTest, ExtendedSignatureProgramsSemiVsNaive) {
  util::Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    ProgramGenOptions opts;
    opts.allow_extended = true;
    opts.num_rules = 3 + static_cast<int32_t>(rng.Below(6));
    Program p = RandomMonadicProgram(rng, opts);
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(40)),
                              {"a", "b"});
    ExpectSameResults(p, t);
  }
}

TEST(EngineEquivalenceTest, PaperProgramsOnRandomTrees) {
  util::Rng rng(7);
  std::vector<Program> programs;
  programs.push_back(EvenAProgram({"b", "c"}));
  programs.push_back(HasAncestorProgram("b"));
  programs.push_back(EvenDepthLeafProgram());
  programs.push_back(DomProgram());
  for (int trial = 0; trial < 15; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(100)),
                              {"a", "b", "c"});
    for (const Program& p : programs) ExpectSameResults(p, t);
  }
}

// ---------------------------------------------------------------------------
// Grounded engine specifics (Theorem 4.2)
// ---------------------------------------------------------------------------

TEST(GroundedTest, RejectsExtendedSignature) {
  auto p = ParseProgram("q(X) :- child(X, Y), leaf(Y).");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(GroundableOverTree(*p));
  EXPECT_FALSE(EvaluateGrounded(*p, SmallTree()).ok());
  // The facade falls back to semi-naive.
  auto r = EvaluateOnTree(*p, SmallTree(), Engine::kAuto);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Unary(p->preds().Find("q")), (std::vector<int32_t>{0, 2}));
}

TEST(GroundedTest, DisconnectedRuleSplitsViaBridge) {
  // q(X) holds for all leaves X iff some node is labeled c.
  auto p = ParseProgramWithQuery("q(X) :- leaf(X), label_c(Y).", "q");
  ASSERT_TRUE(p.ok());
  auto r = EvaluateGrounded(*p, SmallTree());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{1, 3, 4, 5}));
  // Without any c-labeled node the bridge stays false.
  auto r2 = EvaluateGrounded(*p, tree::PaperExample32Tree());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->Query().empty());
}

TEST(GroundedTest, PropositionalHeads) {
  auto p = ParseProgramWithQuery(
      "found :- label_e(X). q(X) :- leaf(X), found.", "q");
  ASSERT_TRUE(p.ok());
  auto r = EvaluateGrounded(*p, SmallTree());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{1, 3, 4, 5}));
  EXPECT_TRUE(r->NullaryTrue(p->preds().Find("found")));
}

TEST(GroundedTest, ConstantsInRules) {
  // Node 2 of SmallTree is labeled c.
  auto p = ParseProgramWithQuery("q(2) :- root(0). r(X) :- q(X).", "q");
  ASSERT_TRUE(p.ok());
  auto res = EvaluateGrounded(*p, SmallTree());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->Query(), (std::vector<int32_t>{2}));
  EXPECT_EQ(res->Unary(p->preds().Find("r")), (std::vector<int32_t>{2}));
}

TEST(GroundedTest, ChildKBackwardRequiresExactPosition) {
  auto p = ParseProgramWithQuery("q(X) :- child2(X, Y), label_e(Y).", "q");
  ASSERT_TRUE(p.ok());
  auto r = EvaluateGrounded(*p, SmallTree());
  ASSERT_TRUE(r.ok());
  // e (id 4) is the 2nd child of c (id 2).
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{2}));
}

TEST(GroundedTest, StatsAreLinear) {
  Program p = EvenAProgram();
  Tree t = tree::CompleteBinaryTree(6, "a");  // 127 nodes
  GroundStats stats;
  auto r = EvaluateGrounded(p, t, &stats);
  ASSERT_TRUE(r.ok());
  // At most one ground clause per (rule, node).
  EXPECT_LE(stats.num_clauses,
            static_cast<int64_t>(p.rules().size()) * t.size());
  EXPECT_GT(stats.num_clauses, 0);
}

TEST(GroundedTest, SelfLoopBinaryAtomIsUnsatisfiable) {
  auto p = ParseProgramWithQuery("q(X) :- nextsibling(X, X).", "q");
  ASSERT_TRUE(p.ok());
  auto r = EvaluateGrounded(*p, SmallTree());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Query().empty());
}

TEST(EvalOptionsTest, MaxDerivedGuard) {
  Program p = DomProgram();
  Tree t = tree::ChainTree(50, "a");
  TreeDatabase db(t);
  EvalOptions opts;
  opts.max_derived = 10;
  auto r = EvaluateSemiNaive(p, db, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(EvalTest, BinaryIdbSupportedByFixpointEngines) {
  // Non-monadic baseline: transitive closure of nextsibling.
  auto p = ParseProgram(
      "tc(X, Y) :- nextsibling(X, Y).\n"
      "tc(X, Z) :- tc(X, Y), nextsibling(Y, Z).\n");
  ASSERT_TRUE(p.ok());
  Tree t = SmallTree();  // TreeDatabase references the tree; keep it alive.
  TreeDatabase db(t);
  auto r = EvaluateSemiNaive(*p, db);
  ASSERT_TRUE(r.ok());
  using P = std::vector<std::pair<int32_t, int32_t>>;
  EXPECT_EQ(r->Binary(p->preds().Find("tc")),
            (P{{1, 2}, {1, 5}, {2, 5}, {3, 4}}));
}

TEST(EvalTest, ExplicitDatabaseEvaluation) {
  // Reachability over an explicit graph (arbitrary finite structure).
  auto p = ParseProgramWithQuery(
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n",
      "reach");
  ASSERT_TRUE(p.ok());
  ExplicitDatabase db(5);
  db.AddFact("start", 0);
  db.AddFact("edge", 0, 1);
  db.AddFact("edge", 1, 2);
  db.AddFact("edge", 3, 4);
  auto r = EvaluateNaive(*p, db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Query(), (std::vector<int32_t>{0, 1, 2}));
}

}  // namespace
}  // namespace mdatalog::core
