// The wrapper-serving runtime: compiled-program + shared-document caches and
// the thread-pool batch executor. The load-bearing property throughout is
// that every cached / parallel / arena-reusing path is byte-identical to the
// sequential, cache-free evaluation (and, at the datalog level, to the
// pre-rewrite reference oracle).

#include <barrier>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/grounder.h"
#include "src/core/reference_eval.h"
#include "src/elog/ast.h"
#include "src/elog/to_datalog.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/runtime/document_cache.h"
#include "src/runtime/program_cache.h"
#include "src/runtime/runtime.h"
#include "src/store/corpus_store.h"
#include "src/tmnf/pipeline.h"
#include "src/tree/generator.h"
#include "src/tree/serialize.h"
#include "src/util/deadline.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// The bench_wrapper catalog wrapper: class-projected labels, Elog⁻ only
/// (so the Corollary 6.4 grounded pipeline compiles).
wrapper::Wrapper CatalogWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  EXPECT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};
  return w;
}

/// A wrapper over raw tag labels (no projection), for the board pages.
wrapper::Wrapper BoardWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    litem(X) <- anynode(P), subelem(P, "li", X).
    deepleaf(X) <- litem(X), leaf(X).
  )");
  EXPECT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"litem", "deepleaf"};
  return w;
}

/// One Request per page, borrowing the page bytes (the caller's vector
/// outlives the SubmitBatch join).
std::vector<runtime::Request> ViewBatch(
    const runtime::WrapperHandle& handle,
    const std::vector<std::string>& pages,
    const runtime::RequestOptions& options = {}) {
  std::vector<runtime::Request> requests;
  requests.reserve(pages.size());
  for (const std::string& page : pages) {
    requests.push_back({runtime::PageRef::View(page), handle, options});
  }
  return requests;
}

std::string CatalogPage(uint64_t seed, int32_t items) {
  util::Rng rng(seed);
  html::CatalogOptions opts;
  opts.num_items = items;
  opts.with_ads = true;
  return html::ProductCatalogPage(rng, opts);
}

std::string BoardPage(uint64_t seed, int32_t depth, int32_t fanout) {
  util::Rng rng(seed);
  return html::NestedBoardPage(rng, depth, fanout);
}

/// The cache-free, single-threaded reference the runtime must reproduce.
std::string SequentialXml(const wrapper::Wrapper& w, const std::string& html,
                          const std::string& attr) {
  auto doc = html::ParseHtml(html);
  EXPECT_TRUE(doc.ok());
  if (attr.empty()) {
    auto out = wrapper::WrapTree(w, doc->tree());
    EXPECT_TRUE(out.ok());
    return tree::ToXml(*out);
  }
  tree::Tree t = html::ProjectAttributeIntoLabels(*doc, attr);
  auto out = wrapper::WrapTree(w, t);
  EXPECT_TRUE(out.ok());
  return tree::ToXml(*out);
}

// ---------------------------------------------------------------------------
// DocumentCache
// ---------------------------------------------------------------------------

TEST(DocumentCacheTest, SharesOneParsePerDistinctContent) {
  runtime::DocumentCache cache(64 << 20);
  std::string page = BoardPage(1, 3, 3);
  auto a = cache.GetOrParse(page, "");
  auto b = cache.GetOrParse(page, "");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());  // literally the same shared document

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes_in_use, 0);

  // A different projection attribute is a different entry: the projected
  // tree differs even for identical bytes.
  auto c = cache.GetOrParse(page, "class");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->get(), c->get());
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(DocumentCacheTest, EvictsLruUnderByteBudget) {
  // Budget sized from a real document so the test tracks ApproxBytes drift.
  // Single shard, plain LRU: this test pins the recency semantics the
  // TinyLFU tests below build on.
  auto probe = runtime::CachedDocument::Parse(BoardPage(1, 3, 3), "");
  ASSERT_TRUE(probe.ok());
  const int64_t one_doc = (*probe)->ApproxBytes();
  runtime::DocumentCache cache(runtime::DocumentCacheOptions{
      .cache = {.byte_budget = 2 * one_doc + one_doc / 2,
                .num_shards = 1,
                .tinylfu_admission = false},
  });

  ASSERT_TRUE(cache.GetOrParse(BoardPage(1, 3, 3), "").ok());
  ASSERT_TRUE(cache.GetOrParse(BoardPage(2, 3, 3), "").ok());
  ASSERT_TRUE(cache.GetOrParse(BoardPage(3, 3, 3), "").ok());

  auto stats = cache.stats();
  EXPECT_GE(stats.evictions, 1);
  EXPECT_LE(stats.entries, 2);
  EXPECT_LE(stats.bytes_in_use, stats.byte_budget);

  // The survivor is the most recently used: page 3 hits, page 1 re-misses.
  ASSERT_TRUE(cache.GetOrParse(BoardPage(3, 3, 3), "").ok());
  EXPECT_EQ(cache.stats().hits, 1);
  ASSERT_TRUE(cache.GetOrParse(BoardPage(1, 3, 3), "").ok());
  EXPECT_EQ(cache.stats().misses, 4);
}

TEST(DocumentCacheTest, ZeroBudgetDisablesCaching) {
  runtime::DocumentCache cache(0);
  std::string page = BoardPage(1, 2, 2);
  auto a = cache.GetOrParse(page, "");
  auto b = cache.GetOrParse(page, "");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(DocumentCacheTest, AccountsLateEdbMaterialization) {
  runtime::DocumentCache cache(64 << 20);
  std::string page = BoardPage(5, 3, 3);
  auto doc = cache.GetOrParse(page, "");
  ASSERT_TRUE(doc.ok());
  const int64_t before = cache.stats().bytes_in_use;
  // Touch EDB relations after admission — the charge must grow on next hit.
  (void)(*doc)->edb().Get("firstchild", 2);
  (void)(*doc)->edb().Get("nextsibling", 2);
  (void)(*doc)->edb().Get("child", 2);
  auto again = cache.GetOrParse(page, "");
  ASSERT_TRUE(again.ok());
  EXPECT_GT(cache.stats().bytes_in_use, before);
}

TEST(DocumentCacheTest, RechargeAccountsMaterializationWithoutAHit) {
  // The budget-honesty fix: an entry whose EDB materializes after admission
  // must be rechargeable explicitly — a document evaluated once and never
  // hit again would otherwise occupy bytes the shard doesn't know about.
  runtime::DocumentCache cache(64 << 20);
  std::string page = BoardPage(6, 3, 3);
  const runtime::Hash128 hash = runtime::HashBytes128(page);
  auto doc = cache.GetOrParse(page, "", hash);
  ASSERT_TRUE(doc.ok());
  const int64_t before = cache.stats().bytes_in_use;
  (void)(*doc)->edb().Get("firstchild", 2);
  (void)(*doc)->edb().Get("nextsibling", 2);
  cache.Recharge(hash, "");
  EXPECT_GT(cache.stats().bytes_in_use, before);
  // No LRU/stat side effects: recharge is bookkeeping, not an access.
  EXPECT_EQ(cache.stats().hits, 0);
  // Recharging an absent key is a no-op.
  cache.Recharge(runtime::HashBytes128("no such page"), "");
}

TEST(DocumentCacheTest, TinyLfuKeepsHotEntryAgainstColdScan) {
  // One shard so the hot page and the scan contend for the same budget.
  auto probe = runtime::CachedDocument::Parse(BoardPage(1, 3, 3), "");
  ASSERT_TRUE(probe.ok());
  const int64_t one_doc = (*probe)->ApproxBytes();
  runtime::DocumentCache cache(runtime::DocumentCacheOptions{
      .cache = {.byte_budget = 2 * one_doc + one_doc / 2,
                .num_shards = 1,
                .tinylfu_admission = true},
  });

  // Make page 1 hot: several accesses build up sketch frequency.
  std::string hot = BoardPage(1, 3, 3);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(cache.GetOrParse(hot, "").ok());
  const int64_t hits_before_scan = cache.stats().hits;

  // A one-hit scan of distinct cold pages. Plain LRU would evict the hot
  // page; TinyLFU must reject the one-hit candidates instead.
  for (uint64_t seed = 100; seed < 130; ++seed) {
    ASSERT_TRUE(cache.GetOrParse(BoardPage(seed, 3, 3), "").ok());
  }
  EXPECT_GT(cache.stats().admission_rejects, 0);

  // The hot page survived the scan: next access is a hit, not a re-parse.
  ASSERT_TRUE(cache.GetOrParse(hot, "").ok());
  EXPECT_EQ(cache.stats().hits, hits_before_scan + 1);
}

TEST(DocumentCacheTest, ShardsPartitionTheKeySpace) {
  runtime::DocumentCache cache(64 << 20);  // default options: 8 shards
  EXPECT_EQ(cache.num_shards(), 8);
  EXPECT_EQ(cache.stats().shards, 8);
  // Structurally distinct pages (item count varies), so every seed is a
  // distinct cache key.
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ASSERT_TRUE(
        cache.GetOrParse(CatalogPage(seed, static_cast<int32_t>(seed)), "")
            .ok());
  }
  // Ample budget: sharding must not change visible cache behavior — every
  // distinct page is resident wherever it hashed to.
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 16);
  EXPECT_EQ(stats.misses, 16);
  EXPECT_EQ(stats.evictions, 0);
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ASSERT_TRUE(
        cache.GetOrParse(CatalogPage(seed, static_cast<int32_t>(seed)), "")
            .ok());
  }
  EXPECT_EQ(cache.stats().hits, 16);
}

TEST(DocumentCacheTest, StoreHitsNotDoubleCountedUnderRace) {
  // Regression: store_hits used to be booked inside the rehydration itself,
  // so two threads missing concurrently on the same content hash both
  // counted a store hit even though only the insert-race winner's copy is
  // served. The count must be exactly one per distinct page, no matter how
  // the races resolve.
  constexpr int kRounds = 16;
  const std::string path =
      std::string(testing::TempDir()) + "/store_hits_race.mdcs";
  std::vector<std::string> pages;
  store::CorpusStore::Builder builder;
  for (int r = 0; r < kRounds; ++r) {
    pages.push_back(CatalogPage(700 + r, 4 + r % 3));
    ASSERT_TRUE(builder.AddHtml(pages.back(), "").ok());
  }
  ASSERT_TRUE(builder.Save(path).ok());
  auto store = store::CorpusStore::Open(path);
  ASSERT_TRUE(store.ok());

  runtime::DocumentCacheOptions options;
  options.cache.byte_budget = 64 << 20;
  options.cache.num_shards = 1;
  options.cache.tinylfu_admission = false;  // every miss admits: pure LRU
  options.corpus_store = *store;
  runtime::DocumentCache cache(options);

  // Both threads released onto the same fresh page at once, every round:
  // each round is one in-memory miss pair racing to rehydrate + insert.
  std::barrier<> gate(2);
  auto worker = [&] {
    for (int r = 0; r < kRounds; ++r) {
      gate.arrive_and_wait();
      auto doc = cache.GetOrParse(pages[r], "");
      ASSERT_TRUE(doc.ok());
      EXPECT_FALSE((*doc)->has_html());  // served from the store
    }
  };
  std::thread a(worker), b(worker);
  a.join();
  b.join();

  auto stats = cache.stats();
  // Deterministic regardless of race outcome: the loser either serves the
  // winner's inserted copy (its own rehydration is discarded, uncounted) or
  // scores an in-memory hit. The buggy accounting reported up to 2x — which
  // manifests whenever both threads pass the miss check before either
  // inserts, i.e. reliably on multi-core runners.
  EXPECT_EQ(stats.store_hits, kRounds);
  EXPECT_EQ(stats.hits + stats.misses, 2 * kRounds);
  EXPECT_GE(stats.misses, kRounds);
}

// ---------------------------------------------------------------------------
// ProgramCache
// ---------------------------------------------------------------------------

TEST(ProgramCacheTest, CompilesOnceAndBuildsGroundPlan) {
  runtime::ProgramCache cache(8);
  wrapper::Wrapper w = CatalogWrapper();
  auto a = cache.GetOrCompile(w);
  auto b = cache.GetOrCompile(w);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  // Elog⁻ program: the Corollary 6.4 pipeline must have compiled, with one
  // resolved tmnf predicate per extraction pattern.
  EXPECT_TRUE((*a)->has_ground_plan);
  EXPECT_EQ(cache.stats().ground_plans, 1);
  ASSERT_EQ((*a)->pattern_preds.size(), 2u);
  EXPECT_GE((*a)->pattern_preds[0], 0);
  EXPECT_GE((*a)->pattern_preds[1], 0);

  // Different pattern list ⇒ different fingerprint ⇒ separate entry.
  wrapper::Wrapper w2 = CatalogWrapper();
  w2.extraction_patterns = {"price"};
  auto c = cache.GetOrCompile(w2);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->get(), c->get());
}

TEST(ProgramCacheTest, DeltaBuiltinProgramFallsBackToNativeOnly) {
  auto program = elog::ParseElog(
      "a0(X) <- root(R), subelem(R, \"a\", X), notafter(R, \"a\", X).\n");
  ASSERT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"a0"};
  runtime::ProgramCache cache(4);
  auto compiled = cache.GetOrCompile(w);
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE((*compiled)->has_ground_plan);
  EXPECT_EQ(cache.stats().ground_plans, 0);
}

TEST(ProgramCacheTest, CapacityEvictsLru) {
  runtime::ProgramCache cache(2);
  wrapper::Wrapper w = CatalogWrapper();
  wrapper::Wrapper w2 = CatalogWrapper();
  w2.extraction_patterns = {"item"};
  wrapper::Wrapper w3 = CatalogWrapper();
  w3.extraction_patterns = {"price"};
  ASSERT_TRUE(cache.GetOrCompile(w).ok());
  ASSERT_TRUE(cache.GetOrCompile(w2).ok());
  ASSERT_TRUE(cache.GetOrCompile(w3).ok());  // evicts w
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().evictions, 1);
  ASSERT_TRUE(cache.GetOrCompile(w).ok());  // re-compile, not a hit
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 4);
}

TEST(ProgramCacheTest, RejectsInvalidPrograms) {
  elog::ElogProgram bad;
  elog::ElogRule r;
  r.head_pattern = "root";  // heads must not be "root" (Definition 6.2)
  r.head_var = "X";
  r.parent_pattern = "root";
  r.parent_var = "X";
  bad.AddRule(r);
  wrapper::Wrapper w;
  w.program = bad;
  runtime::ProgramCache cache(4);
  EXPECT_FALSE(cache.GetOrCompile(w).ok());
}

/// CatalogWrapper reformulated: rules permuted, variables renamed, one
/// duplicate rule added. Extraction-equivalent, so the canonical key must
/// match CatalogWrapper's exactly.
wrapper::Wrapper ReformulatedCatalogWrapper() {
  auto program = elog::ParseElog(R"(
    price(Q) <- item(I), subelem(I, "td@price", Q).
    item(N)  <- anynode(A), subelem(A, "tr@item", N).
    anynode(N) <- anynode(A), subelem(A, "_", N).
    anynode(R) <- root(R).
    item(Z)  <- anynode(W), subelem(W, "tr@item", Z).
  )");
  EXPECT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};
  return w;
}

TEST(ProgramCacheTest, CanonicalKeySharesReformulatedWrapper) {
  runtime::ProgramCache cache(8);
  wrapper::Wrapper w = CatalogWrapper();
  wrapper::Wrapper re = ReformulatedCatalogWrapper();
  auto a = cache.GetOrCompile(w);
  ASSERT_TRUE(a.ok());
  // New text, same canonical key: the compiled plan is shared, not rebuilt.
  auto b = cache.GetOrCompile(re);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().canonical_key_hits, 1);
  EXPECT_EQ(cache.stats().entries, 1);
  // The reformulation is now aliased: repeat lookups hit on the cheap
  // syntactic fingerprint without recomputing the canonical key.
  auto c = cache.GetOrCompile(re);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->get(), c->get());
  EXPECT_EQ(cache.stats().hits, 2);
  EXPECT_EQ(cache.stats().canonical_key_hits, 1);
  // Both formulations memo-key on one canonical fingerprint.
  EXPECT_EQ((*a)->canonical_fingerprint, (*b)->canonical_fingerprint);
}

TEST(ProgramCacheTest, CanonicalKeysOffKeepsFormulationsSeparate) {
  runtime::ProgramCache cache(8, /*canonical_keys=*/false);
  auto a = cache.GetOrCompile(CatalogWrapper());
  auto b = cache.GetOrCompile(ReformulatedCatalogWrapper());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().canonical_key_hits, 0);
  // Syntactic keys double as canonical ones, so the memo keys differ too.
  EXPECT_NE((*a)->canonical_fingerprint, (*b)->canonical_fingerprint);
}

TEST(ProgramCacheTest, CanonicalEntryEvictsAllAliases) {
  runtime::ProgramCache cache(2);
  wrapper::Wrapper w = CatalogWrapper();
  ASSERT_TRUE(cache.GetOrCompile(w).ok());
  ASSERT_TRUE(cache.GetOrCompile(ReformulatedCatalogWrapper()).ok());  // alias
  wrapper::Wrapper w2 = CatalogWrapper();
  w2.extraction_patterns = {"item"};
  wrapper::Wrapper w3 = CatalogWrapper();
  w3.extraction_patterns = {"price"};
  ASSERT_TRUE(cache.GetOrCompile(w2).ok());
  ASSERT_TRUE(cache.GetOrCompile(w3).ok());  // evicts the catalog entry
  EXPECT_EQ(cache.stats().entries, 2);
  // Both the original and the alias must miss now — no dangling index
  // entries pointing at the evicted program.
  ASSERT_TRUE(cache.GetOrCompile(w).ok());
  ASSERT_TRUE(cache.GetOrCompile(ReformulatedCatalogWrapper()).ok());
  EXPECT_EQ(cache.stats().canonical_key_hits, 2);  // re-merged after recompile
}

// ---------------------------------------------------------------------------
// GroundPlan replay + arena reuse (core-level): byte-identical to the
// one-shot grounded engine and to the pre-rewrite reference oracle.
// ---------------------------------------------------------------------------

TEST(GroundPlanTest, ReplayWithSharedArenaMatchesReferenceEval) {
  wrapper::Wrapper w = CatalogWrapper();
  auto datalog = elog::ElogToDatalog(w.program);
  ASSERT_TRUE(datalog.ok());
  auto tmnf = tmnf::ToTmnf(*datalog);
  ASSERT_TRUE(tmnf.ok());
  auto plan = core::GroundPlan::Compile(*tmnf);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  std::vector<core::PredId> pats;
  for (const std::string& p : w.extraction_patterns) {
    pats.push_back(tmnf->preds().Find("pat_" + p));
    ASSERT_GE(pats.back(), 0);
  }

  util::Rng rng(99);
  core::GroundArena arena;  // one arena, reused across all trees
  for (int trial = 0; trial < 10; ++trial) {
    tree::Tree t = tree::RandomTree(
        rng, 1 + static_cast<int32_t>(rng.Below(80)),
        {"table", "tr@item", "td@price", "a", "b"});
    auto replay = core::EvaluateGrounded(*plan, t, &arena);
    auto oneshot = core::EvaluateGrounded(*tmnf, t);
    core::TreeDatabase db(t);
    auto reference = core::EvaluateSemiNaiveReference(*tmnf, db);
    ASSERT_TRUE(replay.ok());
    ASSERT_TRUE(oneshot.ok());
    ASSERT_TRUE(reference.ok());
    for (core::PredId p : pats) {
      EXPECT_EQ(replay->Unary(p), oneshot->Unary(p));
      EXPECT_EQ(replay->Unary(p), reference->Unary(p));
    }
    EXPECT_EQ(replay->num_derived(), oneshot->num_derived());
  }
}

// ---------------------------------------------------------------------------
// WrapperRuntime: correctness vs the sequential reference
// ---------------------------------------------------------------------------

TEST(WrapperRuntimeTest, MatchesSequentialWrapperOnRawLabels) {
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(BoardWrapper());
  ASSERT_TRUE(handle.ok());
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    std::string page = BoardPage(seed, 3, 3);
    auto got = rt.Wrap(*handle, page);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, SequentialXml(BoardWrapper(), page, ""));
  }
}

TEST(WrapperRuntimeTest, MatchesSequentialWrapperWithProjection) {
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    std::string page = CatalogPage(seed, 12);
    auto got = rt.Wrap(*handle, page);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, SequentialXml(CatalogWrapper(), page, "class"));
  }
  auto stats = rt.stats();
  EXPECT_EQ(stats.grounded_evals, 5);  // kAuto used the Corollary 6.4 plan
  EXPECT_EQ(stats.native_evals, 0);
}

TEST(WrapperRuntimeTest, EnginesProduceIdenticalOutput) {
  runtime::RuntimeOptions native_opts;
  native_opts.engine = runtime::RuntimeOptions::EngineMode::kNativeElog;
  native_opts.result_memo.byte_budget = 0;
  runtime::RuntimeOptions grounded_opts;
  grounded_opts.engine = runtime::RuntimeOptions::EngineMode::kGroundedDatalog;
  grounded_opts.result_memo.byte_budget = 0;
  runtime::RuntimeOptions seminaive_opts;
  seminaive_opts.engine =
      runtime::RuntimeOptions::EngineMode::kSemiNaiveDatalog;
  seminaive_opts.result_memo.byte_budget = 0;
  runtime::WrapperRuntime native(native_opts);
  runtime::WrapperRuntime grounded(grounded_opts);
  runtime::WrapperRuntime seminaive(seminaive_opts);
  auto hn = native.Register(CatalogWrapper(), "class");
  auto hg = grounded.Register(CatalogWrapper(), "class");
  auto hs = seminaive.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(hn.ok());
  ASSERT_TRUE(hg.ok());
  ASSERT_TRUE(hs.ok());
  // Two passes: the second pass hits the document cache, which re-reads
  // each entry's byte charge — by then the semi-naive engine's shared EDB
  // materializations from pass one are accounted.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t seed = 10; seed <= 14; ++seed) {
      std::string page = CatalogPage(seed, 8);
      auto a = native.Wrap(*hn, page);
      auto b = grounded.Wrap(*hg, page);
      auto c = seminaive.Wrap(*hs, page);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_TRUE(c.ok());
      EXPECT_EQ(*a, *b);
      EXPECT_EQ(*a, *c);
    }
  }
  EXPECT_EQ(native.stats().native_evals, 10);
  EXPECT_EQ(grounded.stats().grounded_evals, 10);
  EXPECT_EQ(seminaive.stats().seminaive_evals, 10);
  // The semi-naive engine runs over the cached documents' shared
  // TreeDatabase — its EDB materializations must show up in the cache's
  // byte accounting (the grounded replay walks the tree directly instead).
  EXPECT_GT(seminaive.stats().document_cache.bytes_in_use,
            grounded.stats().document_cache.bytes_in_use);
}

TEST(WrapperRuntimeTest, GroundedModeFailsForDeltaBuiltins) {
  auto program = elog::ParseElog(
      "a0(X) <- root(R), subelem(R, \"a\", X), notafter(R, \"a\", X).\n");
  ASSERT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"a0"};

  runtime::RuntimeOptions opts;
  opts.engine = runtime::RuntimeOptions::EngineMode::kGroundedDatalog;
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(w);
  ASSERT_TRUE(handle.ok());  // registration succeeds (native still works)
  EXPECT_FALSE(rt.Wrap(*handle, "<a>x</a>").ok());

  // kAuto serves the same wrapper through the native engine.
  runtime::WrapperRuntime rt_auto;
  auto h2 = rt_auto.Register(w);
  ASSERT_TRUE(h2.ok());
  auto got = rt_auto.Wrap(*h2, "<html><a>x</a></html>");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, SequentialXml(w, "<html><a>x</a></html>", ""));
}

TEST(WrapperRuntimeTest, MemoServesIdenticalBytesAndCounts) {
  runtime::WrapperRuntime rt;
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());
  std::string page = CatalogPage(3, 10);
  auto first = rt.Wrap(*handle, page);
  auto second = rt.Wrap(*handle, page);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  auto stats = rt.stats();
  EXPECT_EQ(stats.memo_hits, 1);
  EXPECT_EQ(stats.pages_wrapped, 1);  // second request never re-evaluated
}

TEST(WrapperRuntimeTest, EquivalentWrapperRevisionsShareMemoizedResults) {
  runtime::WrapperRuntime rt;
  auto h1 = rt.Register(CatalogWrapper(), "class");
  auto h2 = rt.Register(ReformulatedCatalogWrapper(), "class");
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  std::string page = CatalogPage(11, 10);
  auto first = rt.Wrap(*h1, page);
  auto second = rt.Wrap(*h2, page);  // revision: same canonical key
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  auto stats = rt.stats();
  EXPECT_EQ(stats.program_cache.canonical_key_hits, 1);
  EXPECT_EQ(stats.memo_hits, 1);      // the revision was served from memo
  EXPECT_EQ(stats.pages_wrapped, 1);  // never re-evaluated

  // A/B control: with canonical keys off, the revision compiles and
  // evaluates separately (the pre-canonicalization behavior).
  runtime::RuntimeOptions opts;
  opts.canonical_program_keys = false;
  runtime::WrapperRuntime rt_ab(opts);
  auto g1 = rt_ab.Register(CatalogWrapper(), "class");
  auto g2 = rt_ab.Register(ReformulatedCatalogWrapper(), "class");
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  ASSERT_TRUE(rt_ab.Wrap(*g1, page).ok());
  ASSERT_TRUE(rt_ab.Wrap(*g2, page).ok());
  auto ab = rt_ab.stats();
  EXPECT_EQ(ab.program_cache.canonical_key_hits, 0);
  EXPECT_EQ(ab.memo_hits, 0);
  EXPECT_EQ(ab.pages_wrapped, 2);
}

// ---------------------------------------------------------------------------
// Concurrency: many threads × one shared document, many documents × one
// shared program — results byte-identical to the sequential reference.
// Memoization is disabled so every request actually evaluates concurrently.
// ---------------------------------------------------------------------------

TEST(WrapperRuntimeConcurrencyTest, ManyThreadsOneSharedDocument) {
  runtime::RuntimeOptions opts;
  opts.num_threads = 8;
  opts.result_memo.byte_budget = 0;
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  std::string page = CatalogPage(7, 16);
  const std::string expected = SequentialXml(CatalogWrapper(), page, "class");

  std::vector<std::future<util::Result<std::string>>> futures;
  for (int i = 0; i < 48; ++i) {
    futures.push_back(rt.Submit({runtime::PageRef::View(page), *handle, {}}));
  }
  for (auto& f : futures) {
    auto got = f.get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, expected);
  }
  // All 48 requests evaluated (no memo), over at most a handful of parses
  // (the document cache absorbs the rest — a racing first miss may parse a
  // couple of times, see DocumentCache::GetOrParse).
  auto stats = rt.stats();
  EXPECT_EQ(stats.pages_wrapped, 48);
  EXPECT_GE(stats.document_cache.hits, 40);
}

TEST(WrapperRuntimeConcurrencyTest, ManyDocumentsOneSharedProgram) {
  runtime::RuntimeOptions opts;
  opts.num_threads = 8;
  opts.result_memo.byte_budget = 0;
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  std::vector<std::string> pages;
  std::vector<std::string> expected;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    pages.push_back(CatalogPage(seed, 4 + static_cast<int32_t>(seed % 9)));
    expected.push_back(SequentialXml(CatalogWrapper(), pages.back(), "class"));
  }
  // Submit each page twice, interleaved, to mix shared-document and
  // shared-program contention.
  std::vector<std::future<util::Result<std::string>>> futures;
  for (int round = 0; round < 2; ++round) {
    for (const std::string& page : pages) {
      futures.push_back(
          rt.Submit({runtime::PageRef::View(page), *handle, {}}));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, expected[i % pages.size()]);
  }
  EXPECT_EQ(rt.stats().program_cache.entries, 1);
}

TEST(WrapperRuntimeConcurrencyTest, MemoUnderContentionStaysCorrect) {
  runtime::RuntimeOptions opts;
  opts.num_threads = 8;  // memo enabled: exercise the memo's own locking
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(BoardWrapper());
  ASSERT_TRUE(handle.ok());
  std::string page = BoardPage(11, 3, 4);
  const std::string expected = SequentialXml(BoardWrapper(), page, "");
  std::vector<std::future<util::Result<std::string>>> futures;
  // PageRef::Copy: each request is self-contained (exercises the owning
  // flavor; the View flavor is covered above).
  for (int i = 0; i < 32; ++i) {
    futures.push_back(rt.Submit({runtime::PageRef::Copy(page), *handle, {}}));
  }
  for (auto& f : futures) {
    auto got = f.get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected);
  }
}

TEST(WrapperRuntimeConcurrencyTest, CancelledRequestsNeverCorruptShardState) {
  // 8 workers, shared cancel token fired mid-batch: every request must
  // resolve to either a full correct result or a clean kCancelled — and the
  // caches must afterwards serve byte-identical results, i.e. cancellation
  // unwound without corrupting any shard.
  runtime::RuntimeOptions opts;
  opts.num_threads = 8;
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  std::vector<std::string> pages;
  std::vector<std::string> expected;
  for (uint64_t seed = 50; seed < 82; ++seed) {
    pages.push_back(CatalogPage(seed, 6 + static_cast<int32_t>(seed % 5)));
    expected.push_back(SequentialXml(CatalogWrapper(), pages.back(), "class"));
  }

  runtime::RequestOptions request;
  request.cancel = std::make_shared<util::CancelToken>();
  std::vector<std::future<util::Result<std::string>>> futures;
  for (const std::string& page : pages) {
    futures.push_back(
        rt.Submit({runtime::PageRef::View(page), *handle, request}));
  }
  // Let some requests land, then cancel the rest of the batch.
  futures.front().wait();
  request.cancel->Cancel();

  int64_t cancelled = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto got = futures[i].get();
    if (got.ok()) {
      EXPECT_EQ(*got, expected[i]);
    } else {
      EXPECT_EQ(got.status().code(), util::StatusCode::kCancelled)
          << got.status().ToString();
      ++cancelled;
    }
  }
  EXPECT_EQ(rt.stats().cancelled, cancelled);

  // Shard-state integrity: the same corpus, no cancel, through the warm (and
  // partially populated) caches — every page byte-identical to sequential.
  auto results = rt.SubmitBatch(ViewBatch(*handle, pages));
  for (size_t i = 0; i < pages.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(*results[i], expected[i]);
  }
}

TEST(WrapperRuntimeConcurrencyTest, SubmitBatchIsDeterministicAndOrdered) {
  runtime::RuntimeOptions opts;
  opts.num_threads = 4;
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  std::vector<std::string> pages;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    pages.push_back(CatalogPage(seed, 3 + static_cast<int32_t>(seed % 7)));
  }
  auto first = rt.SubmitBatch(ViewBatch(*handle, pages));
  auto second = rt.SubmitBatch(ViewBatch(*handle, pages));
  ASSERT_EQ(first.size(), pages.size());
  ASSERT_EQ(second.size(), pages.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    ASSERT_TRUE(first[i].ok());
    ASSERT_TRUE(second[i].ok());
    // Deterministic across runs, index-aligned with the input, and equal to
    // the sequential single-thread evaluation.
    EXPECT_EQ(*first[i], *second[i]);
    EXPECT_EQ(*first[i], SequentialXml(CatalogWrapper(), pages[i], "class"));
  }
}

}  // namespace
