// The corpus store: pack → save → mmap-open → serve must be byte-identical
// to parsing, corrupt bytes must surface as typed errors (never as wrong
// answers or crashes), and a store-backed runtime must produce exactly the
// XML a parse-every-time runtime produces — under every engine mode.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/database.h"
#include "src/elog/ast.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/runtime/document_cache.h"
#include "src/runtime/runtime.h"
#include "src/store/corpus_store.h"
#include "src/store/format.h"
#include "src/tree/serialize.h"
#include "src/tree/tree.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

std::string CatalogPage(uint64_t seed, int32_t items) {
  util::Rng rng(seed);
  html::CatalogOptions opts;
  opts.num_items = items;
  opts.with_ads = true;
  return html::ProductCatalogPage(rng, opts);
}

std::string BoardPage(uint64_t seed, int32_t depth, int32_t fanout) {
  util::Rng rng(seed);
  return html::NestedBoardPage(rng, depth, fanout);
}

wrapper::Wrapper CatalogWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  EXPECT_TRUE(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};
  return w;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Builds a store of `n` catalog pages under `attr` projection plus one
/// board page (raw labels), saved at `path`.
std::shared_ptr<const store::CorpusStore> BuildAndOpen(
    const std::string& path, int32_t n, const std::string& attr) {
  store::CorpusStore::Builder b;
  for (int32_t i = 0; i < n; ++i) {
    EXPECT_TRUE(b.AddHtml(CatalogPage(100 + i, 8 + i % 5), attr).ok());
  }
  EXPECT_TRUE(b.AddHtml(BoardPage(7, 3, 3), "").ok());
  EXPECT_TRUE(b.Save(path).ok());
  auto store = store::CorpusStore::Open(path);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return *store;
}

// ---------------------------------------------------------------------------
// Round trip
// ---------------------------------------------------------------------------

TEST(CorpusStoreTest, RoundTripsTreesByteForByte) {
  const std::string path = TempPath("roundtrip.mdcs");
  auto store = BuildAndOpen(path, 4, "class");
  ASSERT_EQ(store->size(), 5);

  for (int32_t i = 0; i < 4; ++i) {
    const std::string page = CatalogPage(100 + i, 8 + i % 5);
    auto frozen = store->Find(util::HashBytes128(page), "class");
    ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
    EXPECT_EQ(frozen->project_attr, "class");

    // The frozen tree must equal the tree the serving runtime would build by
    // parsing + projecting — structure, labels and texts.
    auto doc = html::ParseHtml(page);
    ASSERT_TRUE(doc.ok());
    const tree::Tree expected = html::ProjectAttributeIntoLabels(*doc, "class");
    const tree::Tree got = frozen->MakeTree();
    EXPECT_TRUE(got.frozen());
    EXPECT_TRUE(tree::TreesEqual(expected, got));
    // And serialize identically (exercises text() views over the mapping).
    EXPECT_EQ(tree::ToXml(expected), tree::ToXml(got));
  }

  // The raw (unprojected) board page lives under attr "".
  const std::string board = BoardPage(7, 3, 3);
  auto frozen = store->Find(util::HashBytes128(board), "");
  ASSERT_TRUE(frozen.ok());
  auto doc = html::ParseHtml(board);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(tree::TreesEqual(doc->tree(), frozen->MakeTree()));

  // Same bytes, different projection: not the same document.
  EXPECT_EQ(store->Find(util::HashBytes128(board), "class").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(store->Find(util::HashBytes128("<p>absent</p>"), "").status().code(),
            util::StatusCode::kNotFound);
}

TEST(CorpusStoreTest, FrozenEdbMatchesScannedEdb) {
  const std::string path = TempPath("edb.mdcs");
  auto store = BuildAndOpen(path, 1, "class");
  const std::string page = CatalogPage(100, 8);
  auto frozen = store->Find(util::HashBytes128(page), "class");
  ASSERT_TRUE(frozen.ok());

  const tree::Tree frozen_tree = frozen->MakeTree();
  core::TreeDatabase from_bits(frozen_tree, &frozen->edb);

  auto doc = html::ParseHtml(page);
  ASSERT_TRUE(doc.ok());
  const tree::Tree scanned_tree =
      html::ProjectAttributeIntoLabels(*doc, "class");
  core::TreeDatabase from_scan(scanned_tree);

  std::vector<std::string> preds = {"root", "leaf", "lastsibling",
                                    "firstsibling"};
  for (int32_t id = 0; id < scanned_tree.labels().size(); ++id) {
    preds.push_back(core::LabelPredName(scanned_tree.labels().Name(id)));
  }
  preds.push_back("label_no_such_label");
  for (const std::string& pred : preds) {
    const core::Relation* a = from_bits.Get(pred, 1);
    const core::Relation* b = from_scan.Get(pred, 1);
    ASSERT_TRUE(a != nullptr && b != nullptr) << pred;
    EXPECT_EQ(a->unary_tuples(), b->unary_tuples()) << pred;
    EXPECT_EQ(a->unary_set().count(), b->unary_set().count()) << pred;
  }
}

TEST(CorpusStoreTest, DedupsAndReplacesByContentAndAttr) {
  store::CorpusStore::Builder b;
  const std::string page = CatalogPage(1, 6);
  ASSERT_TRUE(b.AddHtml(page, "").ok());
  ASSERT_TRUE(b.AddHtml(page, "").ok());      // same key: replaced, not added
  ASSERT_TRUE(b.AddHtml(page, "class").ok()); // different projection: added
  EXPECT_EQ(b.num_documents(), 2);

  const std::string path = TempPath("dedup.mdcs");
  ASSERT_TRUE(b.Save(path).ok());
  auto store = store::CorpusStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->size(), 2);
}

TEST(CorpusStoreTest, EmptyStoreRoundTrips) {
  const std::string path = TempPath("empty.mdcs");
  store::CorpusStore::Builder b;
  ASSERT_TRUE(b.Save(path).ok());
  auto store = store::CorpusStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->size(), 0);
  EXPECT_EQ((*store)->Find({1, 2}, "").status().code(),
            util::StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Typed rejection of bad files
// ---------------------------------------------------------------------------

TEST(CorpusStoreTest, RejectsGarbageAsInvalidArgument) {
  const std::string path = TempPath("garbage.mdcs");
  WriteFile(path, std::string(256, 'x'));
  auto store = store::CorpusStore::Open(path);
  EXPECT_EQ(store.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(CorpusStoreTest, RejectsTruncationAsDataLoss) {
  const std::string path = TempPath("trunc.mdcs");
  BuildAndOpen(path, 1, "");
  const std::string bytes = ReadFile(path);

  // Sub-header truncation.
  WriteFile(path, bytes.substr(0, 10));
  EXPECT_EQ(store::CorpusStore::Open(path).status().code(),
            util::StatusCode::kDataLoss);
  // Tail truncation (file_size mismatch).
  WriteFile(path, bytes.substr(0, bytes.size() - 13));
  EXPECT_EQ(store::CorpusStore::Open(path).status().code(),
            util::StatusCode::kDataLoss);
}

TEST(CorpusStoreTest, RejectsWrongVersionAsFailedPrecondition) {
  const std::string path = TempPath("version.mdcs");
  BuildAndOpen(path, 1, "");
  std::string bytes = ReadFile(path);
  bytes[4] = 99;  // FileHeader::version
  WriteFile(path, bytes);
  EXPECT_EQ(store::CorpusStore::Open(path).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(CorpusStoreTest, RejectsFlippedPayloadByteAsDataLoss) {
  const std::string path = TempPath("bitrot.mdcs");
  BuildAndOpen(path, 1, "");
  std::string bytes = ReadFile(path);
  // First doc blob sits right after the file header; flip one byte inside
  // its payload (past the doc header).
  const size_t victim =
      sizeof(store::FileHeader) + sizeof(store::DocHeader) + 8;
  ASSERT_LT(victim, bytes.size());
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
  WriteFile(path, bytes);

  // The file-level structure is intact, so Open succeeds...
  auto store = store::CorpusStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // ...but serving the damaged document reports DataLoss, never bad data.
  EXPECT_EQ((*store)->Get(0).status().code(), util::StatusCode::kDataLoss);
}

TEST(CorpusStoreTest, MissingFileIsInvalidArgument) {
  EXPECT_EQ(
      store::CorpusStore::Open(TempPath("never_written.mdcs")).status().code(),
      util::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Runtime integration: snapshot-served == parse-served, all engines
// ---------------------------------------------------------------------------

TEST(CorpusStoreRuntimeTest, SnapshotServingIsByteIdenticalAcrossEngines) {
  const std::string path = TempPath("serving.mdcs");
  constexpr int32_t kPages = 6;
  std::vector<std::string> pages;
  store::CorpusStore::Builder b;
  for (int32_t i = 0; i < kPages; ++i) {
    pages.push_back(CatalogPage(500 + i, 6 + i));
    ASSERT_TRUE(b.AddHtml(pages.back(), "class").ok());
  }
  ASSERT_TRUE(b.Save(path).ok());
  auto store = store::CorpusStore::Open(path);
  ASSERT_TRUE(store.ok());

  using Engine = runtime::RuntimeOptions::EngineMode;
  for (Engine engine : {Engine::kNativeElog, Engine::kGroundedDatalog,
                        Engine::kSemiNaiveDatalog}) {
    runtime::RuntimeOptions plain_opts;
    plain_opts.engine = engine;
    plain_opts.result_memo.byte_budget = 0;  // compare evaluations, not memo hits
    runtime::WrapperRuntime plain(plain_opts);

    runtime::RuntimeOptions stored_opts = plain_opts;
    stored_opts.corpus_store = *store;
    runtime::WrapperRuntime stored(stored_opts);

    auto plain_handle = plain.Register(CatalogWrapper(), "class");
    auto stored_handle = stored.Register(CatalogWrapper(), "class");
    ASSERT_TRUE(plain_handle.ok() && stored_handle.ok());

    for (const std::string& page : pages) {
      auto want = plain.Wrap(*plain_handle, page);
      auto got = stored.Wrap(*stored_handle, page);
      ASSERT_TRUE(want.ok() && got.ok());
      EXPECT_EQ(*want, *got);  // byte-identical extraction output
    }
    // Every page was served out of the snapshot, none was parsed.
    EXPECT_EQ(stored.stats().document_cache.store_hits, kPages);
    EXPECT_EQ(plain.stats().document_cache.store_hits, 0);
  }
}

TEST(CorpusStoreRuntimeTest, FallsBackToParsingOnStoreMiss) {
  const std::string path = TempPath("fallback.mdcs");
  store::CorpusStore::Builder b;
  ASSERT_TRUE(b.AddHtml(CatalogPage(1, 5), "class").ok());
  ASSERT_TRUE(b.Save(path).ok());
  auto store = store::CorpusStore::Open(path);
  ASSERT_TRUE(store.ok());

  runtime::RuntimeOptions opts;
  opts.corpus_store = *store;
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(CatalogWrapper(), "class");
  ASSERT_TRUE(handle.ok());

  // Not in the store: parsed, still served correctly.
  const std::string cold = CatalogPage(999, 7);
  auto got = rt.Wrap(*handle, cold);
  ASSERT_TRUE(got.ok());
  EXPECT_NE(got->find("<item>"), std::string::npos);
  EXPECT_EQ(rt.stats().document_cache.store_hits, 0);

  // In the store: served from the snapshot.
  auto warm = rt.Wrap(*handle, CatalogPage(1, 5));
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(rt.stats().document_cache.store_hits, 1);
}

TEST(CorpusStoreRuntimeTest, ConcurrentReadersShareOneMapping) {
  const std::string path = TempPath("concurrent.mdcs");
  constexpr int32_t kPages = 4;
  std::vector<std::string> pages;
  store::CorpusStore::Builder b;
  for (int32_t i = 0; i < kPages; ++i) {
    pages.push_back(CatalogPage(700 + i, 10));
    ASSERT_TRUE(b.AddHtml(pages[i], "class").ok());
  }
  ASSERT_TRUE(b.Save(path).ok());
  auto store = store::CorpusStore::Open(path);
  ASSERT_TRUE(store.ok());

  // Many threads rehydrate and evaluate the same frozen documents with no
  // coordination beyond the store's immutability.
  const wrapper::Wrapper w = CatalogWrapper();
  std::vector<std::string> expected;
  for (const auto& page : pages) {
    auto doc = html::ParseHtml(page);
    ASSERT_TRUE(doc.ok());
    auto out =
        wrapper::WrapTree(w, html::ProjectAttributeIntoLabels(*doc, "class"));
    ASSERT_TRUE(out.ok());
    expected.push_back(tree::ToXml(*out));
  }

  constexpr int32_t kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int32_t> failures(kThreads, 0);
  for (int32_t ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      for (int32_t round = 0; round < 3; ++round) {
        for (size_t pi = 0; pi < pages.size(); ++pi) {
          auto frozen =
              (*store)->Find(util::HashBytes128(pages[pi]), "class");
          if (!frozen.ok()) { ++failures[ti]; continue; }
          const tree::Tree t = frozen->MakeTree();
          core::TreeDatabase edb(t, &frozen->edb);
          (void)edb.Get("leaf", 1);
          auto out = wrapper::WrapTree(w, t);
          if (!out.ok() || tree::ToXml(*out) != expected[pi]) ++failures[ti];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int32_t f : failures) EXPECT_EQ(f, 0);
}

}  // namespace
