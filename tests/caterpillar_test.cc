#include <gtest/gtest.h>

#include <algorithm>

#include "src/caterpillar/containment.h"
#include "src/caterpillar/eval.h"
#include "src/caterpillar/expr.h"
#include "src/caterpillar/nfa.h"
#include "src/caterpillar/to_datalog.h"
#include "src/core/grounder.h"
#include "src/core/parser.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

namespace mdatalog::caterpillar {
namespace {

using tree::NodeId;
using tree::Tree;
using tree::TreeBuilder;

// gtest fixture bodies resolve unqualified Test to testing::Test; wrap ours.
ExprPtr NodeTest(const std::string& name) {
  return ::mdatalog::caterpillar::Test(name);
}

// ---------------------------------------------------------------------------
// Parsing and printing
// ---------------------------------------------------------------------------

TEST(CaterpillarParseTest, DocumentOrderSyntax) {
  auto e = ParseExpr("child+ | (child^-1)*.nextsibling+.child*");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, Expr::Kind::kUnion);
}

TEST(CaterpillarParseTest, BracketsDenoteTests) {
  auto e = ParseExpr("firstchild.[lastsibling]");
  ASSERT_TRUE(e.ok());
  ASSERT_EQ((*e)->children.size(), 2u);
  EXPECT_EQ((*e)->children[1]->kind, Expr::Kind::kTest);
  EXPECT_EQ((*e)->children[1]->name, "lastsibling");
}

TEST(CaterpillarParseTest, EpsKeyword) {
  auto e = ParseExpr("eps | firstchild");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->children[0]->kind, Expr::Kind::kEpsilon);
}

TEST(CaterpillarParseTest, PrecedencePostfixOverConcatOverUnion) {
  auto e = ParseExpr("a.b* | c");
  ASSERT_TRUE(e.ok());
  ASSERT_EQ((*e)->kind, Expr::Kind::kUnion);
  const ExprPtr& left = (*e)->children[0];
  ASSERT_EQ(left->kind, Expr::Kind::kConcat);
  EXPECT_EQ(left->children[1]->kind, Expr::Kind::kStar);
}

TEST(CaterpillarParseTest, Errors) {
  EXPECT_FALSE(ParseExpr("").ok());
  EXPECT_FALSE(ParseExpr("(child").ok());
  EXPECT_FALSE(ParseExpr("[leaf").ok());
  EXPECT_FALSE(ParseExpr("child |").ok());
  EXPECT_FALSE(ParseExpr("child extra garbage )").ok());
}

TEST(CaterpillarParseTest, RoundTrip) {
  for (const char* text :
       {"child+ | (child^-1)*.nextsibling+.child*",
        "firstchild.[lastsibling]", "eps", "(a | b).c*",
        "firstchild^-1.nextsibling"}) {
    auto e1 = ParseExpr(text);
    ASSERT_TRUE(e1.ok()) << text;
    auto e2 = ParseExpr(ToString(*e1));
    ASSERT_TRUE(e2.ok()) << ToString(*e1);
    EXPECT_EQ(ToString(*e1), ToString(*e2));
  }
}

TEST(CaterpillarExprTest, SizeAndFactories) {
  ExprPtr e = Plus(Rel("child"));  // child.child*
  EXPECT_EQ(e->kind, Expr::Kind::kConcat);
  EXPECT_EQ(ExprSize(e), 4);
  // Union(1) + [child.child*](4) + [(child^-1)*.ns+.child*](10).
  EXPECT_EQ(ExprSize(DocumentOrderExpr()), 15);
}

// ---------------------------------------------------------------------------
// Proposition 2.3 / 2.4: inverse push-down
// ---------------------------------------------------------------------------

bool HasInverseNode(const ExprPtr& e) {
  if (e->kind == Expr::Kind::kInverse) return true;
  for (const ExprPtr& c : e->children) {
    if (HasInverseNode(c)) return true;
  }
  return false;
}

TEST(PushDownInversesTest, RemovesAllInverseNodes) {
  util::Rng rng(3);
  ExprPtr e = Inverse(Concat(
      {Rel("firstchild"), Star(Inverse(Rel("nextsibling"))), NodeTest("leaf")}));
  ExprPtr pushed = PushDownInverses(e);
  EXPECT_FALSE(HasInverseNode(pushed));
  // (E.F)^-1 = F^-1.E^-1: the test comes first now.
  ASSERT_EQ(pushed->kind, Expr::Kind::kConcat);
  EXPECT_EQ(pushed->children[0]->kind, Expr::Kind::kTest);
  (void)rng;
}

TEST(PushDownInversesTest, DoubleInverseCancels) {
  ExprPtr e = Inverse(Inverse(Rel("firstchild")));
  ExprPtr pushed = PushDownInverses(e);
  EXPECT_EQ(pushed->kind, Expr::Kind::kRel);
  EXPECT_FALSE(pushed->inverted);
}

TEST(PushDownInversesTest, SemanticsPreservedOnRandomTrees) {
  util::Rng rng(17);
  std::vector<ExprPtr> exprs = {
      Inverse(Concat({Rel("firstchild"), Rel("nextsibling")})),
      Inverse(Union({Rel("child"), Rel("nextsibling")})),
      Inverse(Star(Rel("nextsibling"))),
      Inverse(Concat({Star(Rel("child")), NodeTest("leaf")})),
  };
  for (int trial = 0; trial < 10; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(20)),
                              {"a", "b"});
    for (const ExprPtr& e : exprs) {
      auto lhs = EvalRelationReference(t, e);
      auto rhs = EvalRelationReference(t, PushDownInverses(e));
      ASSERT_TRUE(lhs.ok());
      ASSERT_TRUE(rhs.ok());
      EXPECT_EQ(*lhs, *rhs) << ToString(e);
    }
  }
}

// ---------------------------------------------------------------------------
// NFA evaluation vs. denotational reference
// ---------------------------------------------------------------------------

ExprPtr RandomExpr(util::Rng& rng, int32_t depth) {
  if (depth == 0 || rng.Chance(1, 3)) {
    switch (rng.Below(8)) {
      case 0: return Rel("firstchild");
      case 1: return Rel("nextsibling");
      case 2: return Rel("child");
      case 3: return Rel("lastchild");
      case 4: return NodeTest("leaf");
      case 5: return NodeTest("label_a");
      case 6: return NodeTest("lastsibling");
      default: return Epsilon();
    }
  }
  switch (rng.Below(4)) {
    case 0:
      return Concat({RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1)});
    case 1:
      return Union({RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1)});
    case 2:
      return Star(RandomExpr(rng, depth - 1));
    default:
      return Inverse(RandomExpr(rng, depth - 1));
  }
}

TEST(CaterpillarEvalTest, NfaMatchesReferenceOnRandomExprs) {
  util::Rng rng(20240610);
  for (int trial = 0; trial < 60; ++trial) {
    ExprPtr e = RandomExpr(rng, 3);
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(18)),
                              {"a", "b"});
    auto ref = EvalRelationReference(t, e);
    ASSERT_TRUE(ref.ok());
    CatNfa nfa = CompileToNfa(e);
    for (NodeId src = 0; src < t.size(); ++src) {
      std::vector<NodeId> expected;
      for (const auto& [x, y] : *ref) {
        if (x == src) expected.push_back(y);
      }
      auto got = EvalImage(t, nfa, {src});
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, expected) << ToString(e) << " from node " << src;
    }
  }
}

TEST(CaterpillarEvalTest, ExpandDerivedPreservesSemantics) {
  util::Rng rng(5);
  std::vector<ExprPtr> exprs = {
      Rel("child"), Rel("lastchild"), Inverse(Rel("child")),
      Star(Rel("child")), Concat({Rel("child"), Rel("lastchild")})};
  for (int trial = 0; trial < 10; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(16)),
                              {"a"});
    for (const ExprPtr& e : exprs) {
      auto lhs = EvalRelationReference(t, e);
      auto rhs = EvalRelationReference(t, ExpandDerivedRels(e));
      ASSERT_TRUE(lhs.ok());
      ASSERT_TRUE(rhs.ok());
      EXPECT_EQ(*lhs, *rhs) << ToString(e);
    }
  }
}

TEST(CaterpillarEvalTest, EvalPairAndMultiSource) {
  Tree t = tree::PaperFigure1Tree();
  auto pair = EvalPair(t, Rel("child"), 0, 1);
  ASSERT_TRUE(pair.ok());
  EXPECT_TRUE(*pair);
  auto not_pair = EvalPair(t, Rel("child"), 1, 0);
  ASSERT_TRUE(not_pair.ok());
  EXPECT_FALSE(*not_pair);
  // Multi-source image: children of n3 (id 2) and of root.
  auto img = EvalImage(t, Rel("child"), {0, 2});
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(*img, (std::vector<NodeId>{1, 2, 3, 4, 5}));
}

TEST(CaterpillarEvalTest, UnknownNamesAreErrors) {
  Tree t = tree::PaperFigure1Tree();
  EXPECT_FALSE(EvalImage(t, Rel("sideways"), {0}).ok());
  EXPECT_FALSE(EvalImage(t, NodeTest("shiny"), {0}).ok());
}

// ---------------------------------------------------------------------------
// Example 2.5: document order
// ---------------------------------------------------------------------------

TEST(DocumentOrderTest, MatchesPreorderOnFigure1) {
  Tree t = tree::PaperFigure1Tree();
  auto rel = EvalRelationReference(t, DocumentOrderExpr());
  ASSERT_TRUE(rel.ok());
  // n1 ≺ n2 ≺ n3 ≺ n4 ≺ n5 ≺ n6 (ids 0..5): all 15 ordered pairs.
  EXPECT_EQ(rel->size(), 15u);
  for (NodeId x = 0; x < 6; ++x) {
    for (NodeId y = x + 1; y < 6; ++y) {
      EXPECT_TRUE(std::binary_search(rel->begin(), rel->end(),
                                     std::make_pair(x, y)))
          << x << " ≺ " << y;
    }
  }
}

TEST(DocumentOrderTest, MatchesPreorderRanksOnRandomTrees) {
  util::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Tree t = tree::RandomTree(rng, 2 + static_cast<int32_t>(rng.Below(20)),
                              {"a", "b"});
    std::vector<int32_t> rank = t.PreorderRanks();
    auto rel = EvalRelationReference(t, DocumentOrderExpr());
    ASSERT_TRUE(rel.ok());
    std::set<std::pair<NodeId, NodeId>> got(rel->begin(), rel->end());
    for (NodeId x = 0; x < t.size(); ++x) {
      for (NodeId y = 0; y < t.size(); ++y) {
        EXPECT_EQ(got.count({x, y}) > 0, rank[x] < rank[y])
            << "pair (" << x << "," << y << ")";
      }
    }
  }
}

TEST(DocumentOrderTest, ChildInverseIdentity) {
  // Example 2.5: child^-1 = (nextsibling^-1)*.firstchild^-1.
  util::Rng rng(13);
  ExprPtr lhs = Inverse(Rel("child"));
  auto rhs = ParseExpr("(nextsibling^-1)*.firstchild^-1");
  ASSERT_TRUE(rhs.ok());
  for (int trial = 0; trial < 10; ++trial) {
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(20)),
                              {"a"});
    auto a = EvalRelationReference(t, lhs);
    auto b = EvalRelationReference(t, *rhs);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST(DocumentOrderTest, AnyNodeExprIsTotal) {
  util::Rng rng(23);
  Tree t = tree::RandomTree(rng, 12, {"a", "b"});
  auto rel = EvalRelationReference(t, AnyNodeExpr());
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), static_cast<size_t>(t.size()) * t.size());
}

// ---------------------------------------------------------------------------
// Lemma 5.9: caterpillar → monadic datalog
// ---------------------------------------------------------------------------

TEST(CaterpillarToDatalogTest, Example510ChildRelation) {
  // Example 5.10: p.child where p = label_c nodes of a(b, c(d, e), f).
  TreeBuilder b;
  auto r = b.Root("a");
  b.Child(r, "b");
  auto c = b.Child(r, "c");
  b.Child(c, "d");
  b.Child(c, "e");
  b.Child(r, "f");
  Tree t = b.Build();

  core::Program program;
  core::PredId p = program.preds().MustIntern("p", 1);
  core::PredId label_c = program.preds().MustIntern("label_c", 1);
  program.AddRule(core::MakeRule(core::MakeAtom(p, {core::Term::Var(0)}),
                                 {core::MakeAtom(label_c, {core::Term::Var(0)})},
                                 {"x"}));
  auto res = AppendCaterpillarRules(&program, p, Rel("child"), "pc");
  ASSERT_TRUE(res.ok());
  program.set_query_pred(*res);
  auto eval = core::EvaluateOnTree(program, t);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->Query(), (std::vector<int32_t>{3, 4}));
}

TEST(CaterpillarToDatalogTest, RulesAreTmnfShaped) {
  core::Program program;
  core::PredId p = program.preds().MustIntern("p", 1);
  core::PredId root = program.preds().MustIntern("root", 1);
  program.AddRule(core::MakeRule(core::MakeAtom(p, {core::Term::Var(0)}),
                                 {core::MakeAtom(root, {core::Term::Var(0)})},
                                 {"x"}));
  auto res = AppendCaterpillarRules(&program, p, DocumentOrderExpr(), "ord");
  ASSERT_TRUE(res.ok());
  for (const core::Rule& rule : program.rules()) {
    EXPECT_LE(rule.body.size(), 2u);
    EXPECT_LE(rule.num_vars(), 2);
    EXPECT_EQ(rule.head.args.size(), 1u);
  }
}

TEST(CaterpillarToDatalogTest, MatchesNfaEvalOnRandomExprs) {
  util::Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    ExprPtr e = RandomExpr(rng, 3);
    Tree t = tree::RandomTree(rng, 1 + static_cast<int32_t>(rng.Below(20)),
                              {"a", "b"});
    // Source set: all nodes labeled a.
    std::vector<NodeId> sources;
    for (NodeId n = 0; n < t.size(); ++n) {
      if (t.label_name(n) == "a") sources.push_back(n);
    }
    auto expected = EvalImage(t, e, sources);
    ASSERT_TRUE(expected.ok());

    core::Program program;
    core::PredId p = program.preds().MustIntern("src", 1);
    core::PredId label_a = program.preds().MustIntern("label_a", 1);
    program.AddRule(core::MakeRule(
        core::MakeAtom(p, {core::Term::Var(0)}),
        {core::MakeAtom(label_a, {core::Term::Var(0)})}, {"x"}));
    auto res = AppendCaterpillarRules(&program, p, e, "cw");
    ASSERT_TRUE(res.ok()) << ToString(e);
    program.set_query_pred(*res);
    auto eval = core::EvaluateOnTree(program, t);
    ASSERT_TRUE(eval.ok());
    EXPECT_EQ(eval->Query(), *expected) << ToString(e);
  }
}

TEST(CaterpillarToDatalogTest, OutputSizeLinearInExpr) {
  core::Program program;
  core::PredId p = program.preds().MustIntern("p", 1);
  core::PredId root = program.preds().MustIntern("root", 1);
  program.AddRule(core::MakeRule(core::MakeAtom(p, {core::Term::Var(0)}),
                                 {core::MakeAtom(root, {core::Term::Var(0)})},
                                 {"x"}));
  ExprPtr e = DocumentOrderExpr();
  size_t before = program.rules().size();
  ASSERT_TRUE(AppendCaterpillarRules(&program, p, e, "ord").ok());
  // Thompson NFA has O(|E|) states/edges; after child-expansion |E| grows by
  // a constant factor. Generous linear bound:
  EXPECT_LE(program.rules().size() - before,
            static_cast<size_t>(20 * ExprSize(e)));
}

// ---------------------------------------------------------------------------
// Corollary 5.12: containment
// ---------------------------------------------------------------------------

TEST(ContainmentTest, WordLevelBasics) {
  ExprPtr plus = Plus(Rel("child"));
  ExprPtr star = Star(Rel("child"));
  auto a = WordLanguageContained(plus, star);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(*a);
  auto b = WordLanguageContained(star, plus);  // ε distinguishes
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(*b);
}

TEST(ContainmentTest, UnionAndConcat) {
  auto fc = Rel("firstchild");
  auto ns = Rel("nextsibling");
  auto e1 = Concat({fc, ns});
  auto e2 = Concat({Union({fc, ns}), Union({fc, ns})});
  auto r = WordLanguageContained(e1, e2);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  auto r2 = WordLanguageContained(e2, e1);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

TEST(ContainmentTest, InversionDistinguishes) {
  auto r = WordLanguageContained(Rel("firstchild"),
                                 Inverse(Rel("firstchild")));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(ContainmentTest, WordLevelIsSoundButIncomplete) {
  // Tree-level, firstchild ⊆ child; at word level the letters differ, so the
  // (sound, incomplete) word check must say "not contained".
  auto r = WordLanguageContained(Rel("firstchild"), Rel("child"));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  // ... and the randomized tree-level falsifier finds no counterexample.
  util::Rng rng(7);
  auto cex = FindContainmentCounterexample(Rel("firstchild"), Rel("child"),
                                           rng, 100, 20);
  EXPECT_FALSE(cex.ok());
  EXPECT_EQ(cex.status().code(), util::StatusCode::kNotFound);
}

TEST(ContainmentTest, FalsifierFindsWitness) {
  // child* selects the root itself; child+ does not.
  util::Rng rng(9);
  auto cex = FindContainmentCounterexample(Star(Rel("child")),
                                           Plus(Rel("child")), rng, 50, 10);
  ASSERT_TRUE(cex.ok());
  EXPECT_EQ(cex->node, cex->tree.root());
}

TEST(ContainmentTest, SelfContainment) {
  ExprPtr e = DocumentOrderExpr();
  auto r = WordLanguageContained(e, e);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

}  // namespace
}  // namespace mdatalog::caterpillar
